"""Hash-sharded execution across multiple database stores.

The ROADMAP's scale-out lever: a table's rows are hash-partitioned by a
key column across N :class:`~repro.db.database.Database` instances, and a
:class:`ShardedDatabase` facade speaks the same ``execute(sql)`` API as a
single database. The pieces:

* :class:`ShardRouter` — owns the partitioning function: a stable hash of
  the shard-key value picks the owning store, and WHERE conjuncts that pin
  the key (``k = ?`` / ``k IN (...)``) prune the scatter set down to the
  owning shards (scatter-gather point lookups).
* SELECT fan-out — each target shard runs the FROM/JOIN/WHERE portion of
  the plan locally (:func:`~repro.db.sql.executor.build_from_where`, so
  index probes and predicate pushdown all still apply per shard); the
  coordinator merges the streams and runs projection / aggregation /
  ORDER / LIMIT on top. Decomposable aggregates (COUNT/SUM/MIN/MAX/AVG
  without DISTINCT) are pushed down as partial aggregates and combined at
  the coordinator; joins broadcast the smaller side to every shard so the
  join itself also executes shard-locally.
* Writes — DML routes to the owning shard by key; any statement (or
  explicit transaction) touching several shards commits through the
  existing two-phase commit in :class:`~repro.db.multistore.
  MultiStoreCoordinator`, so atomicity and the aligned commit log come
  for free. That aligned log is what keeps time travel and provenance
  replay working: a global CSN translates onto per-shard local CSNs (see
  :class:`~repro.db.timetravel.ShardedTimeTravel`).
"""

from __future__ import annotations

import warnings
import zlib
from typing import Any, Callable, Iterator, Sequence

from repro.db.database import Database, StatementTrace
from repro.db.expr import (
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Literal,
    Param,
    split_conjuncts,
)
from repro.db.multistore import GlobalTransaction, MultiStoreCoordinator
from repro.faults import active as faults_active
from repro.db.replication import ReplicaSet
from repro.db.result import ResultSet
from repro.db.schema import TableSchema
from repro.db.sql import planner
from repro.db.sql.executor import (
    ExecContext,
    PlanNode,
    RowsNode,
    _drain_rows,
    build_from_where,
    compile_plan_programs,
    evaluate_as_of,
    execute_statement,
    plan_projection,
)
from repro.db.sql.nodes import (
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    DropIndexStmt,
    DropTableStmt,
    InsertStmt,
    OrderItem,
    SelectItem,
    SelectStmt,
    Statement,
    UpdateStmt,
)
from repro.db.sql.planner import Layout, compile_expr
from repro.db.timetravel import ShardedTimeTravel
from repro.db.txn.manager import IsolationLevel, Transaction
from repro.db.types import coerce
from repro.errors import (
    ExecutionError,
    PlanningError,
    ReplicationError,
    SchemaError,
    TimeTravelError,
    TransactionError,
    TypeCoercionError,
)
from repro.runtime.scheduler import CheckpointKind, maybe_checkpoint

_STMT_CACHE_LIMIT = 1024

#: Cooperative-wait bound for the reshard write fence: a parked writer
#: yields this many times before concluding the migration is stuck.
_FENCE_MAX_SPINS = 100_000

#: store-name -> branch transaction, supplied lazily so read-only
#: statements only join the shards they actually touch.
TxnGetter = Callable[[str], Transaction]


def _compile_shard_plan(database: Database, plan: PlanNode) -> None:
    """Attach compiled batch programs to one cached sharded plan.

    Scatter branches and coordinator merges cache plans outside
    ``build_select_plan``, so they compile (and count) here — keeping
    the per-shard ``executor_stats`` mirror honest: one ``plans_compiled``
    tick per freshly built plan, exactly like the single-node cache.
    """
    if database.compiled_execution:
        compile_plan_programs(plan, database)
        stats = getattr(database, "executor_stats", None)
        if stats is not None:
            stats["plans_compiled"] += 1


def stable_hash(value: Any) -> int:
    """Process-independent hash of a shard-key value.

    Python's builtin ``hash`` is salted per process for strings, which
    would scatter the same key to different shards across restarts (and
    break replaying a WAL into a fresh cluster). Integer-valued floats
    hash like the integer so a key routes identically whichever numeric
    type the client handed us.
    """
    if value is None:
        data = b"\x00"
    elif isinstance(value, bool):
        data = b"b1" if value else b"b0"
    elif isinstance(value, int):
        data = b"i%d" % value
    elif isinstance(value, float) and value.is_integer():
        data = b"i%d" % int(value)
    elif isinstance(value, float):
        data = b"f" + repr(value).encode()
    else:
        data = b"s" + str(value).encode("utf-8", "replace")
    return zlib.crc32(data)


class ShardRouter:
    """Maps rows to owning shards by hashing a per-table key column."""

    def __init__(self, shard_names: Sequence[str]):
        if not shard_names:
            raise SchemaError("router needs at least one shard")
        self.shard_names = list(shard_names)
        self._keys: dict[str, str] = {}  # canonical table -> key column (lower)

    def register_table(self, table: str, key_column: str) -> None:
        self._keys.setdefault(table.lower(), key_column.lower())

    def unregister_table(self, table: str) -> None:
        self._keys.pop(table.lower(), None)

    def key_column(self, table: str) -> str | None:
        return self._keys.get(table.lower())

    def shard_for_value(self, key_value: Any) -> str:
        return self.shard_names[stable_hash(key_value) % len(self.shard_names)]

    def shard_for_row(self, table: str, schema: TableSchema, row: tuple) -> str:
        key_col = self._keys[table.lower()]
        return self.shard_for_value(row[schema.index_of(key_col)])

    def routed_shards(
        self,
        table: str,
        schema: TableSchema,
        conjuncts: Sequence[Expr],
        params: Sequence[Any],
        binding: str | None = None,
        ambiguous: bool = False,
    ) -> list[str]:
        """Owning shards for a statement, pruned via key-pinning conjuncts.

        An AND-ed conjunct of the form ``key = <const>`` or ``key IN
        (<consts>)`` restricts the statement to the shards owning those
        key values; anything else fans out to every shard. Constants are
        coerced to the key column's type first so ``id = 5`` and an
        inserted ``5.0`` route identically.

        In a join, pass ``binding`` (the partitioned table's alias) and
        ``ambiguous`` (True when another joined table also has a column
        named like the key): pins then only count when they demonstrably
        reference the partitioned table.
        """
        key_col = self._keys.get(table.lower())
        if key_col is None:
            return list(self.shard_names)
        col_type = schema.column(key_col).col_type
        for conjunct in conjuncts:
            exprs = _key_pinning_exprs(conjunct, key_col, binding, ambiguous)
            if exprs is None:
                continue
            try:
                values = [
                    coerce(_eval_const(e, params), col_type) for e in exprs
                ]
            except (TypeCoercionError, IndexError):
                continue  # un-coercible constant: cannot prune safely
            # NULL never equals anything, so NULL pins contribute no
            # owners; ``IN (1, NULL)`` must still visit 1's shard.
            non_null = [v for v in values if v is not None]
            if not non_null:
                # ``key = NULL`` matches nothing; any one shard can
                # faithfully produce the empty result.
                return [self.shard_names[0]]
            owners = {self.shard_for_value(v) for v in non_null}
            return [n for n in self.shard_names if n in owners]
        return list(self.shard_names)


def _is_key_ref(
    expr: Expr, key_col: str, binding: str | None, ambiguous: bool
) -> bool:
    """Does ``expr`` reference the shard-key column of the routed table?

    With ``binding`` set (join context), a qualified reference must use
    that binding, and an unqualified one only counts when no other
    joined table shares the column name.
    """
    if not (isinstance(expr, ColumnRef) and expr.column.lower() == key_col):
        return False
    if expr.qualifier is not None:
        return binding is None or expr.qualifier.lower() == binding
    return not ambiguous


def _key_pinning_exprs(
    conjunct: Expr,
    key_col: str,
    binding: str | None = None,
    ambiguous: bool = False,
) -> list[Expr] | None:
    """The constant expressions a conjunct pins the shard key to, if any."""
    if isinstance(conjunct, BinaryOp) and conjunct.op in ("=", "=="):
        sides = [(conjunct.left, conjunct.right), (conjunct.right, conjunct.left)]
        for col_side, val_side in sides:
            if _is_key_ref(col_side, key_col, binding, ambiguous) and isinstance(
                val_side, (Literal, Param)
            ):
                return [val_side]
        return None
    if (
        isinstance(conjunct, InList)
        and not conjunct.negated
        and _is_key_ref(conjunct.operand, key_col, binding, ambiguous)
        and all(isinstance(item, (Literal, Param)) for item in conjunct.items)
    ):
        return list(conjunct.items)
    return None


def _eval_const(expr: Expr, params: Sequence[Any]) -> Any:
    if isinstance(expr, Literal):
        return expr.value
    assert isinstance(expr, Param)
    return params[expr.index]


class BroadcastRowsNode(PlanNode):
    """A join side replicated to every shard (the smaller relation).

    Holds the full gathered table; the pushed-down single-table filter the
    planner computed still applies here, per shard, so broadcast sides keep
    predicate pushdown semantics.
    """

    def __init__(
        self,
        binding: str,
        schema: TableSchema,
        rows: Sequence[tuple],
        filter_fn: Any,
    ):
        self.layout = Layout.for_table(binding, schema.column_names)
        self.binding = binding
        self.table = schema.name
        self._rows = rows
        self.filter_fn = filter_fn

    def describe(self) -> str:
        return f"Broadcast({self.table} AS {self.binding}, {len(self._rows)} rows)"

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        filter_fn = self.filter_fn
        if filter_fn is None:
            yield from self._rows
            return
        for values in self._rows:
            if filter_fn(values, ctx.params) is True:
                yield values


#: Aggregates with a partial/final decomposition (DISTINCT forms excluded).
_COMBINE_NAMES = {"COUNT": "SUM", "SUM": "SUM", "MIN": "MIN", "MAX": "MAX"}


class _AggDecomposition:
    """Partial/final split of one aggregate query (built once, cached)."""

    __slots__ = ("partial_stmt", "final_stmt", "partial_layout", "final_entry")

    def __init__(
        self,
        partial_stmt: SelectStmt,
        final_stmt: SelectStmt,
        partial_layout: Layout,
    ):
        self.partial_stmt = partial_stmt
        self.final_stmt = final_stmt
        self.partial_layout = partial_layout
        #: Lazily compiled coordinator combine plan (see _merge_rows).
        self.final_entry: dict[str, Any] | None = None


def decompose_aggregate_stmt(stmt: SelectStmt) -> _AggDecomposition | None:
    """Split a single-table aggregate SELECT into partial and final stages.

    The partial statement runs on every target shard (grouping locally and
    computing per-shard partial aggregates); the final statement re-groups
    the partial rows at the coordinator using combine aggregates:
    ``COUNT -> SUM of counts``, ``SUM -> SUM``, ``MIN/MAX -> MIN/MAX``,
    ``AVG -> SUM of sums / SUM of counts``. Returns None when the query
    has no aggregation or is not decomposable (DISTINCT aggregates).
    """
    if stmt.joins or stmt.from_table is None:
        return None
    if any(item.star for item in stmt.items):
        return None  # star projections never aggregate
    exprs: list[Expr | None] = [item.expr for item in stmt.items]
    exprs.append(stmt.having)
    exprs.extend(item.expr for item in stmt.order_by)
    aggregates = planner.find_aggregates(exprs)
    if not aggregates and not stmt.group_by:
        return None
    if any(agg.distinct for agg in aggregates):
        return None

    group_exprs = list(stmt.group_by)
    partial_items: list[SelectItem] = []
    mapping: dict[str, Expr] = {}
    for i, group_expr in enumerate(group_exprs):
        name = f"_g{i}"
        partial_items.append(SelectItem(expr=group_expr, alias=name))
        mapping[group_expr.sql()] = ColumnRef(name)

    counter = 0

    def partial_column(expr: Expr) -> ColumnRef:
        nonlocal counter
        name = f"_p{counter}"
        counter += 1
        partial_items.append(SelectItem(expr=expr, alias=name))
        return ColumnRef(name)

    for agg in aggregates:
        key = agg.sql()
        if agg.name == "AVG":
            arg = agg.args[0]
            total = FuncCall("SUM", [partial_column(FuncCall("SUM", [arg]))])
            count = FuncCall("SUM", [partial_column(FuncCall("COUNT", [arg]))])
            # AVG over zero non-null inputs is NULL; guard the division.
            # The 1.0 factor forces float division: SQL "/" keeps exact
            # int/int results integral, but native AVG always divides to
            # a float.
            mapping[key] = Case(
                [(IsNull(total), Literal(None))],
                BinaryOp("/", BinaryOp("*", Literal(1.0), total), count),
            )
        else:
            combine = _COMBINE_NAMES[agg.name]
            mapping[key] = FuncCall(combine, [partial_column(agg)])

    partial_stmt = SelectStmt(
        items=partial_items,
        from_table=stmt.from_table,
        where=stmt.where,
        group_by=group_exprs,
        param_count=stmt.param_count,
    )
    final_stmt = SelectStmt(
        items=[
            SelectItem(
                expr=planner.substitute_by_sql(item.expr, mapping),
                alias=item.alias or _output_name(item.expr),
            )
            for item in stmt.items
        ],
        distinct=stmt.distinct,
        group_by=[ColumnRef(f"_g{i}") for i in range(len(group_exprs))],
        having=(
            planner.substitute_by_sql(stmt.having, mapping)
            if stmt.having is not None
            else None
        ),
        order_by=[
            OrderItem(planner.substitute_by_sql(item.expr, mapping), item.ascending)
            for item in stmt.order_by
        ],
        limit=stmt.limit,
        offset=stmt.offset,
        param_count=stmt.param_count,
    )
    partial_layout = Layout()
    for item in partial_items:
        partial_layout.add(None, item.alias)
    return _AggDecomposition(partial_stmt, final_stmt, partial_layout)


def _output_name(expr: Expr) -> str:
    return expr.column if isinstance(expr, ColumnRef) else expr.sql()


class ShardedDatabase:
    """N hash-partitioned stores behind a single-database ``execute`` API.

    DDL applies to every shard (so schemas and indexes stay uniform); DML
    routes by shard key and commits through 2PC when it spans shards;
    SELECTs scatter to the owning shards and merge at the coordinator.
    """

    def __init__(
        self,
        n_shards: int = 4,
        name: str = "sharded",
        shard_keys: dict[str, str] | None = None,
        databases: Sequence[Database] | None = None,
        decision_log: "str | None" = None,
    ):
        if databases is not None:
            shards = list(databases)
        else:
            if n_shards < 1:
                raise SchemaError("a sharded database needs at least one shard")
            shards = [Database(name=f"{name}-shard{i}") for i in range(n_shards)]
        self.name = name
        self.shards = shards
        self.store_names = [f"shard{i}" for i in range(len(shards))]
        self._by_name = dict(zip(self.store_names, shards))
        #: ``decision_log`` names a JSONL file for the coordinator's 2PC
        #: decision log — pass the same path on reopen and
        #: :meth:`recover_in_doubt` resolves crashed-mid-commit branches.
        self.coordinator = MultiStoreCoordinator(
            self._by_name, decision_log=decision_log
        )
        self.router = ShardRouter(self.store_names)
        #: Explicit shard-key choices (table -> column), consulted before
        #: falling back to the primary key / first column at CREATE TABLE.
        self._shard_key_hints = {
            k.lower(): v.lower() for k, v in (shard_keys or {}).items()
        }
        self._agg_cache: dict[tuple, _AggDecomposition | None] = {}
        #: Compiled scatter-gather plans (per-shard FROM/WHERE nodes plus
        #: the coordinator merge plan) keyed by (sql, epochs, isolation).
        self._select_cache: dict[tuple, dict[str, Any]] = {}
        #: LIMIT pushdown: cap each shard's scan at limit+offset rows and
        #: stop draining shards once the coordinator is satisfied. Off
        #: switch exists for differential testing and benchmarking the
        #: gather-everything path.
        self.limit_pushdown_enabled = True
        #: Per-shard replica sets (``attach_replicas``); reads routed via
        #: a :class:`~repro.db.replication.ShardedReadRouter` are then
        #: served by replicas while DML and 2PC stay on the primaries.
        self.replica_sets: dict[str, ReplicaSet] = {}
        #: Online-resharding state. While a migration's brief write fence
        #: is up, new write transactions park in a cooperative wait until
        #: the topology swap completes; ``reshard_horizon`` is the global
        #: CSN of the synthetic aligned commit stamped at the swap —
        #: AS-OF reads below it would need the departed stores.
        self._write_fence = False
        self._active_gtxns = 0
        self._resharding = False
        self.reshard_horizon = 0
        if databases is not None:
            self._adopt_existing_tables()
        #: Counters for the distributed execution paths. Global 2PC
        #: commit counts live on the coordinator (``global_csn`` /
        #: ``len(aligned_log)``), not here.
        self.stats = {
            "routed_statements": 0,  # pruned to a strict shard subset
            "fanout_statements": 0,  # hit every shard
            "partial_agg_queries": 0,
            "broadcast_joins": 0,
            # Coordinator-side merge-plan cache (single-table scatter
            # plans and aggregate decompositions).
            "select_cache_hits": 0,
            "select_cache_misses": 0,
            "agg_cache_hits": 0,
            "agg_cache_misses": 0,
            # LIMIT short-circuit: queries that capped per-shard scans,
            # and shards never drained (or begun) because earlier targets
            # already satisfied the limit.
            "limit_pushdown_queries": 0,
            "limit_shards_skipped": 0,
            # Failover retries burned by connections routed through this
            # cluster (mirrored here by Connection._retry_routed so the
            # cluster-wide robustness surface sees them).
            "failover_retries": 0,
        }

    # -- plumbing -----------------------------------------------------------

    def _adopt_existing_tables(self) -> None:
        """Register tables already present on adopted databases.

        ``databases=`` hands the facade pre-built stores; their catalogs
        must agree (DDL keeps them uniform from here on) and every table
        needs a shard key before any statement can route.
        """
        def catalog_shape(shard: Database) -> dict[str, tuple[str, tuple]]:
            """Table -> (schema DDL, index definitions) for comparison."""
            shape = {}
            for name in shard.catalog.table_names():
                canonical = shard.catalog.resolve(name)
                indexes = tuple(
                    sorted(
                        (
                            index_name,
                            type(index).__name__,
                            tuple(index.columns),
                            getattr(index, "unique", False),
                        )
                        for index_name, index in shard.index_set(
                            canonical
                        ).indexes.items()
                    )
                )
                shape[canonical] = (shard.catalog.get(canonical).ddl(), indexes)
            return shape

        reference_shape = catalog_shape(self.shards[0])
        reference = sorted(reference_shape)
        for store, shard in self.named_shards():
            shape = catalog_shape(shard)
            if shape != reference_shape:
                raise SchemaError(
                    f"adopted store {store} diverges from shard0's schema "
                    "(tables, column layouts, and indexes must be "
                    "uniform across shards)"
                )
        for table in reference:
            schema = self.shards[0].catalog.get(table)
            self._register_shard_key(schema, None)
            # Adopted unique indexes obey the same co-location rule the
            # DDL path enforces: per-shard uniqueness is only global
            # uniqueness when the shard key is among the indexed columns.
            key_col = self.router.key_column(table)
            for index_name, index in self.shards[0].index_set(table).indexes.items():
                if getattr(index, "unique", False) and key_col not in {
                    column.lower() for column in index.columns
                }:
                    raise SchemaError(
                        f"adopted unique index {index_name} on {table}"
                        f"({', '.join(index.columns)}) does not include "
                        f"the shard key {key_col!r}; per-shard indexes "
                        "cannot enforce it across shards"
                    )
            # Pre-existing rows must already sit on their hash owner:
            # data loaded under a different shard count, order, or
            # placement scheme would silently dodge key-routed reads
            # and DML.
            for store, shard in self.named_shards():
                for _row_id, values in shard.store(table).scan(None):
                    owner = self.router.shard_for_row(table, schema, values)
                    if owner != store:
                        key_col = self.router.key_column(table)
                        key_val = values[schema.index_of(key_col)]
                        raise SchemaError(
                            f"adopted store {store} holds {table} row with "
                            f"{key_col}={key_val!r}, which hashes to "
                            f"{owner}; re-partition the data before "
                            "adopting it"
                        )

    def _epochs(self) -> tuple[int, ...]:
        return tuple(shard.catalog_epoch for shard in self.shards)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def named_shards(self) -> list[tuple[str, Database]]:
        return list(zip(self.store_names, self.shards))

    def shard_named(self, name: str) -> Database:
        return self._by_name[name]

    @property
    def catalog(self):
        """The logical catalog (shard 0's; DDL keeps all shards uniform)."""
        return self.shards[0].catalog

    @property
    def last_global_csn(self) -> int:
        return self.coordinator.global_csn

    @property
    def last_commit_csn(self) -> int:
        """The engine-neutral commit position (global CSN here).

        Sessions and ``AS OF`` bookmarks taken against a sharded engine
        are global CSNs; the aligned commit log translates them onto
        per-shard local positions.
        """
        return self.coordinator.global_csn

    @property
    def time_travel(self) -> ShardedTimeTravel:
        return ShardedTimeTravel(self)

    # -- the Engine observer surface ------------------------------------------

    def add_observer(self, observer: Any) -> None:
        """Register a database observer on every shard.

        TROD interposition attaches here exactly as it does on a single
        database: each shard emits ``txn_began`` / ``statement_executed``
        / ``txn_committed`` events for the work it executed, so the
        debugger-visible stream covers the whole cluster. Transaction and
        row ids are meaningful within their owning shard's id space.
        """
        for shard in self.shards:
            shard.add_observer(observer)

    def remove_observer(self, observer: Any) -> None:
        for shard in self.shards:
            shard.remove_observer(observer)

    @property
    def track_reads(self) -> bool:
        return all(shard.track_reads for shard in self.shards)

    @track_reads.setter
    def track_reads(self, value: bool) -> None:
        for shard in self.shards:
            shard.track_reads = value

    @property
    def compiled_execution(self) -> bool:
        return all(shard.compiled_execution for shard in self.shards)

    @compiled_execution.setter
    def compiled_execution(self, value: bool) -> None:
        for shard in self.shards:
            shard.compiled_execution = value

    @property
    def predicate_pushdown_enabled(self) -> bool:
        return all(shard.predicate_pushdown_enabled for shard in self.shards)

    @predicate_pushdown_enabled.setter
    def predicate_pushdown_enabled(self, value: bool) -> None:
        for shard in self.shards:
            shard.predicate_pushdown_enabled = value

    @property
    def executor_stats(self) -> dict[str, int]:
        """Batch-executor counters summed across all shards."""
        totals: dict[str, int] = {}
        for shard in self.shards:
            for key, value in shard.executor_stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    @property
    def storage_stats(self) -> dict[str, Any]:
        """Storage-tier counters summed across all shards.

        Numeric values add up (buffer-pool hits, page reads, live rows,
        ...); non-numeric values — the backend name — are identical on
        every shard and pass through from the first.
        """
        totals: dict[str, Any] = {}
        for shard in self.shards:
            for key, value in shard.storage_stats.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    totals.setdefault(key, value)
                else:
                    totals[key] = totals.get(key, 0) + value
        return totals

    @property
    def cluster_stats(self) -> dict[str, int]:
        """Robustness counters in one flat surface.

        Mirrors :attr:`executor_stats`/:attr:`storage_stats`: replication
        counters summed across every shard's replica set, the 2PC
        coordinator's decision-log counters, connection failover retries,
        and — when a fault injector is installed — how many faults fired.
        """
        totals: dict[str, int] = {}
        for replica_set in self.replica_sets.values():
            for key, value in replica_set.stats.items():
                totals[key] = totals.get(key, 0) + value
        for key, value in self.coordinator.stats.items():
            totals[key] = totals.get(key, 0) + value
        totals["failover_retries"] = self.stats["failover_retries"]
        injector = faults_active()
        if injector is not None:
            totals["faults_injected"] = injector.stats["fired"]
        return totals

    def recover_in_doubt(self) -> dict[str, int]:
        """Resolve 2PC branches left in doubt by a coordinator crash.

        Delegates to :meth:`MultiStoreCoordinator.recover_in_doubt`:
        every shard's durably prepared but undecided branch commits if
        the decision log recorded a commit for its global transaction
        and aborts otherwise (presumed abort), and partially-applied
        phase 2 is repaired. Call once after reopening a cluster from
        disk with the same ``decision_log`` path.
        """
        return self.coordinator.recover_in_doubt()

    def snapshot_rows(self, table: str) -> list[tuple[int, tuple]]:
        """Latest committed ``(row_id, values)`` pairs across all shards.

        Row ids are only unique within their owning shard; callers that
        key on row id (TROD's attach-time snapshot capture) should attach
        before loading data, as on a single node.
        """
        out: list[tuple[int, tuple]] = []
        for shard in self.shards:
            out.extend(shard.snapshot_rows(table))
        return out

    def begin(
        self,
        isolation: IsolationLevel = IsolationLevel.SERIALIZABLE,
        info: dict[str, Any] | None = None,
    ) -> GlobalTransaction:
        self._fence_wait()
        gtxn = self.coordinator.begin(isolation=isolation, info=info)
        self._active_gtxns += 1
        gtxn.on_finish = self._gtxn_finished
        if isolation is IsolationLevel.SNAPSHOT:
            # SNAPSHOT consistency lives in each branch's snapshot CSN.
            # Begin every branch now, at one point in the global commit
            # order; joining lazily would let a 2PC commit land between
            # two branches' snapshots and be observed half-applied (a
            # torn cross-shard read). SERIALIZABLE needs no eager join
            # (2PL blocks such interleavings) and READ_COMMITTED
            # refreshes per statement by design.
            for store in self.store_names:
                gtxn.on(store)
        return gtxn

    def _parse(self, sql: str) -> Statement:
        # Shard 0's statement cache serves the whole facade (identical
        # SQL text parses identically everywhere).
        return self.shards[0]._parse(sql)

    def _note_targets(self, targets: Sequence[str]) -> None:
        if len(targets) < len(self.store_names):
            self.stats["routed_statements"] += 1
        else:
            self.stats["fanout_statements"] += 1

    # -- the Database-compatible surface -------------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        txn: GlobalTransaction | None = None,
    ) -> ResultSet:
        """Execute one statement; multi-shard writes autocommit via 2PC.

        DML results merge per-shard ``row_ids``; each id is meaningful
        only within its owning shard's id space (ids from different
        shards may collide), so correlate rows by shard key, not row id.
        """
        stmt = self._parse(sql)
        if isinstance(
            stmt, (CreateTableStmt, DropTableStmt, CreateIndexStmt, DropIndexStmt)
        ):
            return self._execute_ddl(stmt, sql, params)
        if stmt.param_count != len(params):
            raise ExecutionError(
                f"statement expects {stmt.param_count} parameter(s), "
                f"got {len(params)}"
            )
        if isinstance(stmt, SelectStmt):
            if stmt.as_of is not None:
                # Historical read pinned to a global CSN; independent of
                # any enclosing global transaction's branches.
                return self._select_as_of(
                    stmt, evaluate_as_of(stmt, params), params, None, sql
                )
            if txn is not None:
                return self._execute_select(stmt, params, self._branch_getter(txn), sql)
            return self._ephemeral_select(stmt, params, sql, None)
        autocommit = txn is None
        gtxn = txn if txn is not None else self.begin()
        try:
            if isinstance(stmt, InsertStmt):
                result = self._execute_insert(stmt, params, gtxn, sql)
            elif isinstance(stmt, (UpdateStmt, DeleteStmt)):
                result = self._execute_update_delete(stmt, params, gtxn, sql)
            else:  # pragma: no cover - parser produces no other kinds
                raise ExecutionError(f"cannot execute {type(stmt).__name__}")
            if autocommit:
                gtxn.commit()
            return result
        except Exception:
            if autocommit:
                gtxn.abort()
            raise

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        return self.execute(sql, params)

    def select_routed(
        self,
        sql: str,
        params: Sequence[Any] = (),
        db_for: Callable[[str], Database] | None = None,
    ) -> ResultSet:
        """Run a SELECT with each shard's reads served by ``db_for(store)``.

        The replica-aware read path: ``db_for`` picks the database that
        answers for a shard (a replica, or the primary). Choices are
        memoized per statement so one scatter never straddles two
        databases for the same shard, and the ephemeral read transactions
        are aborted afterwards — replica reads must not consume CSNs.
        """
        stmt = self._parse(sql)
        if not isinstance(stmt, SelectStmt):
            raise ExecutionError("select_routed supports SELECT statements only")
        if stmt.param_count != len(params):
            raise ExecutionError(
                f"statement expects {stmt.param_count} parameter(s), "
                f"got {len(params)}"
            )
        if stmt.as_of is not None:
            return self._select_as_of(
                stmt, evaluate_as_of(stmt, params), params, db_for, sql
            )
        return self._ephemeral_select(stmt, params, sql, db_for)

    def _ephemeral_select(
        self,
        stmt: SelectStmt,
        params: Sequence[Any],
        sql: str | None,
        db_for: Callable[[str], Database] | None,
    ) -> ResultSet:
        chosen: dict[str, Database] = {}
        base = db_for if db_for is not None else self._by_name.__getitem__

        def resolve(store: str) -> Database:
            if store not in chosen:
                chosen[store] = base(store)
            return chosen[store]

        ephemeral: dict[str, Transaction] = {}

        def get_txn(store: str) -> Transaction:
            if store not in ephemeral:
                ephemeral[store] = resolve(store).begin()
            return ephemeral[store]

        try:
            return self._execute_select(stmt, params, get_txn, sql, db_for=resolve)
        finally:
            for branch in ephemeral.values():
                branch.abort()

    def execute_as_of(
        self,
        sql: str,
        global_csn: int,
        params: Sequence[Any] = (),
        db_for: Callable[[str], Database] | None = None,
    ) -> ResultSet:
        """Deprecated: use ``SELECT ... AS OF <csn>`` through ``execute``.

        Kept as a thin shim over the same historical-read path the AS OF
        clause takes, so pre-facade callers keep working.
        """
        warnings.warn(
            "ShardedDatabase.execute_as_of is deprecated; use the "
            "SELECT ... AS OF <csn> clause through execute()/repro.connect()",
            DeprecationWarning,
            stacklevel=2,
        )
        stmt = self._parse(sql)
        if not isinstance(stmt, SelectStmt):
            raise ExecutionError("AS OF execution supports SELECT statements only")
        if stmt.param_count != len(params):
            raise ExecutionError(
                f"statement expects {stmt.param_count} parameter(s), "
                f"got {len(params)}"
            )
        return self._select_as_of(stmt, global_csn, params, db_for, sql)

    def _select_as_of(
        self,
        stmt: SelectStmt,
        global_csn: int,
        params: Sequence[Any],
        db_for: Callable[[str], Database] | None,
        sql: str | None,
    ) -> ResultSet:
        """Run a SELECT against the cluster state at a global CSN.

        The aligned commit log translates the global CSN onto each shard's
        local CSN; every shard then answers from that local snapshot, so
        the merged result is the transactionally consistent cross-shard
        state the coordinator committed at that point. ``db_for`` lets a
        replica-aware router serve the historical read from a replica
        whose shipped history covers the target CSN (replicas preserve
        CSNs, so their version stores answer AS-OF queries identically).
        """
        if global_csn < self.reshard_horizon:
            raise TimeTravelError(
                f"global csn {global_csn} predates the reshard horizon "
                f"({self.reshard_horizon}); that history lives only on "
                "the pre-reshard stores"
            )
        local_csns = self.time_travel.local_csns_at(global_csn)
        base = db_for if db_for is not None else self._by_name.__getitem__
        chosen: dict[str, Database] = {}
        snapshots: dict[str, Transaction] = {}

        def resolve(store: str) -> Database:
            if store not in chosen:
                chosen[store] = base(store)
            return chosen[store]

        def get_txn(store: str) -> Transaction:
            if store not in snapshots:
                shard = resolve(store)
                if local_csns[store] < shard.history_horizon:
                    raise TimeTravelError(
                        f"global csn {global_csn} maps to {store} csn "
                        f"{local_csns[store]}, which predates the vacuum "
                        f"horizon ({shard.history_horizon})"
                    )
                branch = shard.begin(IsolationLevel.SNAPSHOT)
                # Rewind the snapshot from "latest at begin" to the
                # aligned-log position for this global CSN.
                branch.snapshot_csn = local_csns[store]
                snapshots[store] = branch
            return snapshots[store]

        try:
            return self._execute_select(stmt, params, get_txn, sql, db_for=resolve)
        finally:
            for branch in snapshots.values():
                branch.abort()

    def table_rows(self, table: str) -> list[dict[str, Any]]:
        """Latest committed rows across all shards, as column dicts."""
        out: list[dict[str, Any]] = []
        for shard in self.shards:
            out.extend(shard.table_rows(table))
        return out

    def explain(self, sql: str, params: Sequence[Any] = ()) -> list[str]:
        """The distributed strategy plus shard 0's local subplan.

        Pass the statement's ``params`` to see the routing decision for a
        parameterized point lookup; without them, a ``key = ?`` pin
        cannot be evaluated and the plan conservatively shows full
        fan-out.
        """
        stmt = self._parse(sql)
        if not isinstance(stmt, SelectStmt):
            raise ExecutionError("EXPLAIN supports SELECT statements only")
        refs = stmt.table_refs()
        lines: list[str] = []
        if refs:
            db0 = self.shards[0]
            conjuncts = split_conjuncts(stmt.where)
            if len(refs) == 1:
                canonical = db0.catalog.resolve(refs[0].table)
                schema = db0.catalog.get(canonical)
                targets = self.router.routed_shards(
                    canonical, schema, conjuncts, params
                )
                if decompose_aggregate_stmt(stmt) is not None:
                    mode = "PartialAggregate"
                else:
                    mode = "ScatterGather"
                lines.append(f"Sharded{mode}(targets=[{', '.join(targets)}])")
            else:
                part_binding, broadcast = self._join_split(stmt)
                lines.append(
                    "ShardedBroadcastJoin("
                    f"partitioned={part_binding}, "
                    f"broadcast=[{', '.join(sorted(broadcast))}], "
                    f"targets=[{', '.join(self.store_names)}])"
                )
        txn = self.shards[0].txn_manager.begin()
        try:
            plan, _names = self.shards[0].select_plan(stmt, txn, None)
            lines.extend(plan.explain(depth=1))
        finally:
            self.shards[0].txn_manager.abort(txn)
        return lines

    # -- DDL -----------------------------------------------------------------

    def create_table(self, schema: TableSchema, shard_key: str | None = None) -> None:
        """Programmatic CREATE TABLE on every shard, registering the key."""
        self._resolve_shard_key(schema, shard_key)  # validate before DDL
        for shard in self.shards:
            shard.create_table(schema)
        self._register_shard_key(schema, shard_key)
        self._agg_cache.clear()
        self._select_cache.clear()

    def _resolve_shard_key(
        self, schema: TableSchema, shard_key: str | None
    ) -> str:
        """The validated shard-key column for a table's schema.

        Uniqueness is enforced per shard by local indexes, so a UNIQUE or
        PRIMARY KEY constraint can only be honored cluster-wide when the
        shard key is one of its columns (all candidate duplicates then
        hash to the same shard). Anything else is rejected up front
        rather than silently accepting cross-shard duplicates.
        """
        key = (
            shard_key
            or self._shard_key_hints.get(schema.name.lower())
            or (schema.primary_key[0] if schema.primary_key else None)
            or schema.column_names[0]
        ).lower()
        if not schema.has_column(key):
            raise SchemaError(
                f"shard key {key!r} is not a column of {schema.name}"
            )
        for constraint in schema.unique_constraints:
            if key not in {column.lower() for column in constraint}:
                raise SchemaError(
                    f"unique constraint on {schema.name}"
                    f"({', '.join(constraint)}) does not include the shard "
                    f"key {key!r}; per-shard indexes cannot enforce it "
                    "across shards"
                )
        return key

    def _register_shard_key(
        self, schema: TableSchema, shard_key: str | None
    ) -> None:
        canonical = self.shards[0].catalog.resolve(schema.name)
        self.router.register_table(
            canonical, self._resolve_shard_key(schema, shard_key)
        )

    def _execute_ddl(
        self, stmt: Statement, sql: str, params: Sequence[Any]
    ) -> ResultSet:
        # DDL mid-migration would change the schema under the copier's
        # feet; it parks behind the same fence as write transactions.
        self._fence_wait()
        if isinstance(stmt, DropTableStmt):
            db0 = self.shards[0]
            canonical = None
            if db0.catalog.has_table(stmt.name):
                canonical = db0.catalog.resolve(stmt.name)
            # Drops validate against the (uniform) catalog on the first
            # shard before mutating anything, so a failure cannot leave
            # the cluster divergent.
            for shard in self.shards:
                shard.execute(sql, params)
            if canonical is not None:
                self.router.unregister_table(canonical)
            self._agg_cache.clear()
            self._select_cache.clear()
            return ResultSet(kind="ddl")
        db0 = self.shards[0]
        if (
            isinstance(stmt, CreateIndexStmt)
            and stmt.unique
            and db0.catalog.has_table(stmt.table)
        ):
            # Same co-location rule as table-level UNIQUE constraints:
            # a per-shard unique index can only enforce global
            # uniqueness when the shard key is among its columns.
            key_col = self.router.key_column(db0.catalog.resolve(stmt.table))
            if key_col is not None and key_col not in {
                column.lower() for column in stmt.columns
            }:
                raise SchemaError(
                    f"unique index {stmt.name} on {stmt.table}"
                    f"({', '.join(stmt.columns)}) does not include the "
                    f"shard key {key_col!r}; per-shard indexes cannot "
                    "enforce it across shards"
                )
        preexisting: set[str] = set()
        if isinstance(stmt, CreateTableStmt):
            preexisting = {
                store
                for store, shard in self.named_shards()
                if shard.catalog.has_table(stmt.name)
            }
        elif isinstance(stmt, CreateIndexStmt):
            # IndexSet keys are lowercased; match them that way or a
            # duplicate CREATE differing only in case would compensate
            # away the genuinely pre-existing index.
            preexisting = {
                store
                for store, shard in self.named_shards()
                if shard.catalog.has_table(stmt.table)
                and stmt.name.lower() in shard.index_set(stmt.table).indexes
            }
        try:
            for i, shard in enumerate(self.shards):
                shard.execute(sql, params)
                if i == 0 and isinstance(stmt, CreateTableStmt):
                    # Validate routing (shard key exists, unique
                    # constraints include it) against the real schema
                    # before committing the rest of the cluster to it.
                    self._register_shard_key(
                        self.shards[0].catalog.get(stmt.name), None
                    )
        except Exception:
            # A mid-fan-out failure (a bad shard key, or CREATE UNIQUE
            # INDEX hitting duplicates that only one shard's partition
            # contains) must not leave some shards with schema the
            # others lack: undo the statement everywhere, including the
            # shard that failed half-populated.
            self._compensate_create(stmt, preexisting)
            raise
        self._agg_cache.clear()
        self._select_cache.clear()
        return ResultSet(kind="ddl")

    def _compensate_create(
        self, stmt: Statement, preexisting: set[str]
    ) -> None:
        """Best-effort undo of a failed CREATE fan-out on every shard.

        ``preexisting`` names the stores that already had the table
        before this statement (IF NOT EXISTS no-ops there) — those are
        left alone; everywhere else the created object is dropped.
        """
        for store, shard in self.named_shards():
            if store in preexisting:
                continue  # the object predates this statement; keep it
            try:
                if isinstance(stmt, CreateIndexStmt):
                    shard.drop_index(stmt.name, stmt.table, if_exists=True)
                elif isinstance(stmt, CreateTableStmt):
                    shard.drop_table(stmt.name, if_exists=True)
            except Exception:  # pragma: no cover - keep unwinding
                pass
        if isinstance(stmt, CreateTableStmt) and not preexisting:
            self.router.unregister_table(stmt.name)

    # -- SELECT --------------------------------------------------------------

    def _branch_getter(self, gtxn: GlobalTransaction) -> TxnGetter:
        started: set[str] = set()

        def get_txn(store: str) -> Transaction:
            branch = gtxn.on(store)
            if store not in started:
                branch.begin_statement()
                started.add(store)
            return branch

        return get_txn

    def _run_plan(
        self,
        shard: Database,
        txn: Transaction,
        plan: PlanNode,
        params: Sequence[Any],
        sql: str | None,
        cap: int | None = None,
    ) -> list[tuple]:
        """Drain a shard-local plan; ``cap`` bounds rows (LIMIT pushdown).

        ``batch_size=0`` disables mid-scan scheduler yields here: scatter
        branches hold per-shard table locks, and each shard's deadlock
        detector only sees its own waits-for graph — a baton yield while
        holding shard A's lock would let a 2PC writer build an A/B cycle
        no detector can break. Gathers therefore run mid-statement
        exactly as before batching (single-node scans, where detection
        is complete, keep yielding).

        Callers pass ``cap`` only when no provenance or observer needs
        the full drain; a capped drain records no reads and emits no
        statement trace.
        """
        ctx = ExecContext(
            database=shard,
            txn=txn,
            params=params,
            query_text=sql or "",
            track_reads=False if cap is not None else shard.track_reads,
            batch_size=0,
        )
        if cap is not None:
            capped: list[tuple] = []
            for row in plan.rows(ctx):
                capped.append(row)
                if len(capped) >= cap:
                    # Stopping the pull terminates the shard's scan: the
                    # plan below is all generators.
                    break
            return capped
        rows = _drain_rows(plan, ctx)
        if ctx.track_reads:
            # Parity with Database._execute_select: a consulted-but-empty
            # table still yields one null read record per shard.
            for table in sorted(ctx.scanned_tables):
                if not ctx.read_counts.get(table):
                    txn.record_read(table, None, None, sql or "")
        if shard.observers:
            # TROD interposition parity: each shard's observers see the
            # statement trace for the work executed on that shard.
            shard.notify(
                "statement_executed",
                txn,
                StatementTrace(
                    sql=sql or "",
                    kind="select",
                    reads=txn.statement_reads(),
                    rowcount=len(rows),
                ),
            )
        return rows

    def _coordinator_rows(
        self,
        stmt: SelectStmt,
        source: RowsNode,
        params: Sequence[Any],
        sql: str | None,
    ) -> ResultSet:
        plan, out_names = plan_projection(stmt, source, source.layout)
        ctx = ExecContext(
            database=self.shards[0],
            txn=None,  # type: ignore[arg-type]  # merge nodes never touch it
            params=params,
            query_text=sql or "",
            track_reads=False,
        )
        return ResultSet(
            columns=out_names, rows=_drain_rows(plan, ctx), kind="select"
        )

    def _execute_select(
        self,
        stmt: SelectStmt,
        params: Sequence[Any],
        get_txn: TxnGetter,
        sql: str | None,
        db_for: Callable[[str], Database] | None = None,
    ) -> ResultSet:
        """Scatter a SELECT to the target shards and merge the streams.

        ``db_for(store)`` names the database that answers for a shard —
        the primary by default, a replica when a replica-aware router is
        driving. It must agree with ``get_txn``: the branch returned for
        a store must belong to the database ``db_for`` names.
        """
        if db_for is None:
            db_for = self._by_name.__getitem__
        refs = stmt.table_refs()
        if not refs:
            # FROM-less SELECT: any one shard answers it.
            store = self.store_names[0]
            return execute_statement(
                db_for(store), get_txn(store), stmt, params, sql or ""
            )
        db0 = self.shards[0]
        conjuncts = split_conjuncts(stmt.where)

        if len(refs) == 1:
            canonical = db0.catalog.resolve(refs[0].table)
            schema = db0.catalog.get(canonical)
            targets = self.router.routed_shards(canonical, schema, conjuncts, params)
            self._note_targets(targets)
            partial = self._partial_aggregate(
                stmt, params, targets, get_txn, sql, db_for
            )
            if partial is not None:
                return partial
            return self._scatter_gather(stmt, params, targets, get_txn, sql, db_for)

        # Join path: broadcast nodes embed this execution's gathered
        # rows, so these plans are rebuilt per statement. A WHERE pin on
        # the partitioned table's shard key still prunes the partitioned
        # scans (broadcast sides gather from every shard regardless —
        # their rows live everywhere).
        split = self._join_split(stmt)
        targets = self._routed_join_targets(split, refs, conjuncts, params)
        self._note_targets(targets)
        scan_factory = self._broadcast_factory(
            stmt, params, get_txn, sql, split, db_for
        )
        gathered: list[tuple] = []
        layout: Layout | None = None
        for store in targets:
            shard = db_for(store)
            branch = get_txn(store)
            node = build_from_where(stmt, shard, branch, scan_factory=scan_factory)
            if layout is None:
                layout = node.layout
            gathered.extend(self._run_plan(shard, branch, node, params, sql))
        assert layout is not None
        return self._coordinator_rows(
            stmt, RowsNode(layout, gathered, label="ShardGather"), params, sql
        )

    def _limit_pushdown_cap(
        self, stmt: SelectStmt, params: Sequence[Any]
    ) -> int | None:
        """Rows per shard after which a LIMIT query is satisfiable, or None.

        Only single-table SELECTs whose merge step neither reorders nor
        collapses rows qualify: ORDER BY needs every row before it can
        pick winners, DISTINCT / GROUP BY / aggregates reduce rows after
        the gather, and HAVING filters groups. For everything else the
        coordinator concatenates shard streams in target order and
        applies LIMIT/OFFSET on the prefix — so capping the gather at
        ``limit + offset`` rows changes *which rows are scanned*, never
        which rows come back.
        """
        if not self.limit_pushdown_enabled or stmt.limit is None:
            return None
        if (
            stmt.order_by
            or stmt.distinct
            or stmt.group_by
            or stmt.having is not None
        ):
            return None
        exprs = [item.expr for item in stmt.items if not item.star]
        if planner.find_aggregates(exprs):
            return None
        empty = Layout()
        try:
            limit = compile_expr(stmt.limit, empty)((), params)
            offset = (
                compile_expr(stmt.offset, empty)((), params)
                if stmt.offset is not None
                else 0
            )
        except (ExecutionError, PlanningError, IndexError):
            return None
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 0:
            return None
        if not isinstance(offset, int) or isinstance(offset, bool) or offset < 0:
            return None
        return limit + offset

    def _scatter_gather(
        self,
        stmt: SelectStmt,
        params: Sequence[Any],
        targets: Sequence[str],
        get_txn: TxnGetter,
        sql: str | None,
        db_for: Callable[[str], Database],
    ) -> ResultSet:
        """Single-table scatter with cached per-shard and merge plans.

        Per-shard FROM/WHERE nodes and the coordinator projection carry
        no per-execution state, so they cache exactly like single-node
        plans: keyed by (sql, catalog epochs, isolation), with the
        gathered rows swapped into the shared RowsNode per execution.
        Per-database nodes key on (database, its catalog epoch): a shard
        may be served by its primary or any of its replicas, and a
        lagging replica applies DDL later than the primary does.

        When the statement qualifies (see :meth:`_limit_pushdown_cap`)
        the gather is capped per shard at limit+offset rows and stops
        visiting shards entirely once the cap is met — later shards never
        even begin their ephemeral read transactions.
        """
        first = get_txn(targets[0])
        key = (
            ("select", sql, self._epochs(), first.isolation)
            if sql is not None
            else None
        )
        entry = self._select_cache.get(key) if key is not None else None
        if entry is not None:
            self.stats["select_cache_hits"] += 1
        else:
            if key is not None:
                self.stats["select_cache_misses"] += 1
            db0 = db_for(targets[0])
            node0 = build_from_where(stmt, db0, first)
            _compile_shard_plan(db0, node0)
            source = RowsNode(node0.layout, (), label="ShardGather")
            plan, names = plan_projection(stmt, source, node0.layout)
            _compile_shard_plan(db0, plan)
            entry = {
                "nodes": {(db0, db0.catalog_epoch): node0},
                "source": source,
                "plan": plan,
                "names": names,
            }
            if key is not None:
                if len(self._select_cache) >= _STMT_CACHE_LIMIT:
                    self._select_cache.clear()
                self._select_cache[key] = entry
        cap = self._limit_pushdown_cap(stmt, params)
        if cap is not None:
            self.stats["limit_pushdown_queries"] += 1
        gathered: list[tuple] = []
        for position, store in enumerate(targets):
            if cap is not None and len(gathered) >= cap:
                # Coordinator satisfied: remaining shards are never
                # drained — nor their read transactions begun.
                self.stats["limit_shards_skipped"] += len(targets) - position
                break
            branch = get_txn(store)
            database = db_for(store)
            node_key = (database, database.catalog_epoch)
            node = entry["nodes"].get(node_key)
            if node is None:
                # A replica that applied DDL moved to a new epoch; its
                # old-epoch nodes are dead weight — evict before adding.
                stale = [
                    k for k in entry["nodes"] if k[0] is database and k != node_key
                ]
                for k in stale:
                    del entry["nodes"][k]
                node = build_from_where(stmt, database, branch)
                _compile_shard_plan(database, node)
                entry["nodes"][node_key] = node
            if (
                cap is not None
                and not database.track_reads
                and not database.observers
            ):
                gathered.extend(
                    self._run_plan(
                        database,
                        branch,
                        node,
                        params,
                        sql,
                        cap=cap - len(gathered),
                    )
                )
            else:
                # Provenance/trace parity trumps the short-circuit: a
                # TROD-observed shard drains fully, exactly as before.
                gathered.extend(
                    self._run_plan(database, branch, node, params, sql)
                )
        return self._merge_rows(entry, gathered, params, sql)

    def _merge_rows(
        self,
        entry: dict[str, Any],
        gathered: list[tuple],
        params: Sequence[Any],
        sql: str | None,
    ) -> ResultSet:
        """Run a cached coordinator plan over this execution's rows."""
        source: RowsNode = entry["source"]
        source.set_rows(gathered)
        try:
            ctx = ExecContext(
                database=self.shards[0],
                txn=None,  # type: ignore[arg-type]  # merge nodes never touch it
                params=params,
                query_text=sql or "",
                track_reads=False,
            )
            rows = _drain_rows(entry["plan"], ctx)
        finally:
            source.set_rows(())  # don't pin gathered rows in the cache
        return ResultSet(columns=entry["names"], rows=rows, kind="select")

    def _routed_join_targets(
        self,
        split: tuple[str, set[str]],
        refs: Sequence[Any],
        conjuncts: Sequence[Expr],
        params: Sequence[Any],
    ) -> list[str]:
        """Shards whose partitioned-table partition a join must scan."""
        db0 = self.shards[0]
        part_binding, _broadcast = split
        part_ref = next(r for r in refs if r.binding.lower() == part_binding)
        canonical = db0.catalog.resolve(part_ref.table)
        schema = db0.catalog.get(canonical)
        key_col = self.router.key_column(canonical)
        if key_col is None:
            return list(self.store_names)
        ambiguous = any(
            r.binding.lower() != part_binding
            and db0.catalog.get(r.table).has_column(key_col)
            for r in refs
        )
        return self.router.routed_shards(
            canonical, schema, conjuncts, params,
            binding=part_binding, ambiguous=ambiguous,
        )

    def _join_split(self, stmt: SelectStmt) -> tuple[str, set[str]]:
        """Pick the partitioned binding; everything else broadcasts.

        LEFT joins force the FROM table to stay partitioned (its rows must
        appear exactly once across shards for null-extension to be
        correct); otherwise the largest table by total committed rows
        stays put and the smaller sides travel.
        """
        refs = stmt.table_refs()
        db0 = self.shards[0]
        if any(join.kind == "left" for join in stmt.joins):
            part = refs[0].binding.lower()
        else:
            def total_rows(ref) -> int:
                canonical = db0.catalog.resolve(ref.table)
                return sum(s.store(canonical).row_count(None) for s in self.shards)

            part = max(refs, key=total_rows).binding.lower()
        broadcast = {r.binding.lower() for r in refs if r.binding.lower() != part}
        return part, broadcast

    def _broadcast_factory(
        self,
        stmt: SelectStmt,
        params: Sequence[Any],
        get_txn: TxnGetter,
        sql: str | None,
        split: tuple[str, set[str]],
        db_for: Callable[[str], Database],
    ):
        part_binding, broadcast_bindings = split
        self.stats["broadcast_joins"] += 1
        db0 = self.shards[0]
        # Gather each broadcast table once, from every shard, under the
        # statement's transaction branches (so a join sees this global
        # transaction's own uncommitted writes too). Read provenance is
        # recorded here, at gather time — each row is read once from its
        # owning shard, however many shard-local joins it then feeds.
        broadcast_rows: dict[str, list[tuple]] = {}
        for ref in stmt.table_refs():
            if ref.binding.lower() == part_binding:
                continue
            canonical = db0.catalog.resolve(ref.table)
            if canonical in broadcast_rows:
                continue
            rows: list[tuple] = []
            for store in self.store_names:
                branch = get_txn(store)
                track = db_for(store).track_reads
                gathered_here = 0
                for row_id, values in branch.scan(canonical):
                    rows.append(values)
                    gathered_here += 1
                    if track:
                        branch.record_read(canonical, row_id, values, sql or "")
                if track and gathered_here == 0:
                    # Consulted-but-empty parity (Table 2's null reads).
                    branch.record_read(canonical, None, None, sql or "")
            broadcast_rows[canonical] = rows

        def factory(binding, canonical, schema, filter_fn, probe, own_conjuncts):
            if binding.lower() == part_binding:
                return None  # partitioned side: default shard-local scan
            return BroadcastRowsNode(
                binding, schema, broadcast_rows[canonical], filter_fn
            )

        return factory

    def _partial_aggregate(
        self,
        stmt: SelectStmt,
        params: Sequence[Any],
        targets: Sequence[str],
        get_txn: TxnGetter,
        sql: str | None,
        db_for: Callable[[str], Database],
    ) -> ResultSet | None:
        key = (sql, self._epochs()) if sql is not None else None
        if key is not None and key in self._agg_cache:
            self.stats["agg_cache_hits"] += 1
            decomposition = self._agg_cache[key]
        else:
            decomposition = decompose_aggregate_stmt(stmt)
            if key is not None:
                self.stats["agg_cache_misses"] += 1
                if len(self._agg_cache) >= _STMT_CACHE_LIMIT:
                    self._agg_cache.clear()
                self._agg_cache[key] = decomposition
        if decomposition is None:
            return None
        self.stats["partial_agg_queries"] += 1
        partial_rows: list[tuple] = []
        for store in targets:
            shard = db_for(store)
            branch = get_txn(store)
            plan, _names = shard.select_plan(
                decomposition.partial_stmt,
                branch,
                f"#shard-partial#{sql}" if sql is not None else None,
            )
            partial_rows.extend(self._run_plan(shard, branch, plan, params, sql))
        if decomposition.final_entry is None:
            source = RowsNode(
                decomposition.partial_layout, (), label="PartialAggGather"
            )
            plan, names = plan_projection(
                decomposition.final_stmt, source, decomposition.partial_layout
            )
            _compile_shard_plan(self.shards[0], plan)
            decomposition.final_entry = {
                "source": source, "plan": plan, "names": names,
            }
        return self._merge_rows(decomposition.final_entry, partial_rows, params, sql)

    # -- DML -----------------------------------------------------------------

    def _execute_insert(
        self,
        stmt: InsertStmt,
        params: Sequence[Any],
        gtxn: GlobalTransaction,
        sql: str | None,
    ) -> ResultSet:
        db0 = self.shards[0]
        canonical = db0.catalog.resolve(stmt.table)
        schema = db0.catalog.get(canonical)
        columns = stmt.columns or list(schema.column_names)
        for column in columns:
            schema.column(column)  # validates existence
        get_txn = self._branch_getter(gtxn)

        source_rows: list[dict[str, Any]]
        if stmt.select is not None:
            if stmt.select.as_of is not None:
                raise ExecutionError(
                    "AS OF is not supported inside INSERT ... SELECT; "
                    "run the historical read separately"
                )
            inner = self._execute_select(stmt.select, params, get_txn, None)
            if len(inner.columns) != len(columns):
                raise ExecutionError(
                    f"INSERT ... SELECT supplies {len(inner.columns)} "
                    f"column(s) for {len(columns)}"
                )
            source_rows = [dict(zip(columns, row)) for row in inner.rows]
        else:
            empty = Layout()
            source_rows = []
            for row_exprs in stmt.rows:
                if len(row_exprs) != len(columns):
                    raise ExecutionError(
                        f"INSERT supplies {len(row_exprs)} values for "
                        f"{len(columns)} column(s)"
                    )
                source_rows.append(
                    {
                        column: compile_expr(expr, empty)((), params)
                        for column, expr in zip(columns, row_exprs)
                    }
                )

        row_ids: list[int] = []
        per_store: dict[str, list[int]] = {}
        for values in source_rows:
            coerced = schema.coerce_row(values)
            store = self.router.shard_for_row(canonical, schema, coerced)
            row_id = get_txn(store).insert(canonical, coerced)
            row_ids.append(row_id)
            per_store.setdefault(store, []).append(row_id)
        for store, store_row_ids in per_store.items():
            shard = self._by_name[store]
            if shard.observers:
                branch = gtxn.on(store)
                shard.notify(
                    "statement_executed",
                    branch,
                    StatementTrace(
                        sql=sql or "",
                        kind="insert",
                        reads=branch.statement_reads(),
                        writes=[
                            ("insert", canonical, row_id)
                            for row_id in store_row_ids
                        ],
                        rowcount=len(store_row_ids),
                    ),
                )
        self._note_targets(sorted(per_store) if per_store else [self.store_names[0]])
        return ResultSet(kind="insert", rowcount=len(row_ids), row_ids=row_ids)

    def _execute_update_delete(
        self,
        stmt: UpdateStmt | DeleteStmt,
        params: Sequence[Any],
        gtxn: GlobalTransaction,
        sql: str | None,
    ) -> ResultSet:
        db0 = self.shards[0]
        canonical = db0.catalog.resolve(stmt.table.table)
        schema = db0.catalog.get(canonical)
        key_col = self.router.key_column(canonical)
        if isinstance(stmt, UpdateStmt) and key_col is not None:
            for column, _expr in stmt.assignments:
                if column.lower() == key_col:
                    raise ExecutionError(
                        f"cannot UPDATE shard key column {canonical}.{key_col}; "
                        "DELETE and re-INSERT to move a row between shards"
                    )
        conjuncts = split_conjuncts(stmt.where)
        targets = self.router.routed_shards(canonical, schema, conjuncts, params)
        self._note_targets(targets)
        kind = "update" if isinstance(stmt, UpdateStmt) else "delete"
        rowcount = 0
        row_ids: list[int] = []
        for store in targets:
            # Route through the shard's own execute so statement
            # boundaries (READ_COMMITTED refresh) and TROD's
            # statement_executed observers behave exactly as on a
            # single database.
            result = self._by_name[store].execute(
                sql, params, txn=gtxn.on(store)
            )
            rowcount += result.rowcount
            row_ids.extend(result.row_ids)
        return ResultSet(kind=kind, rowcount=rowcount, row_ids=row_ids)

    # -- online resharding ---------------------------------------------------

    def _gtxn_finished(self, _gtxn: GlobalTransaction) -> None:
        self._active_gtxns -= 1

    def _fence_wait(self) -> None:
        """Park a new write transaction while the reshard fence is up.

        The wait is cooperative: each spin yields a LOCK_WAIT checkpoint
        so the scheduler can run the migration task that will lift the
        fence. Off-scheduler the yield is a no-op, so the bound turns a
        stuck fence into a loud error instead of a hang.
        """
        spins = 0
        while self._write_fence:
            maybe_checkpoint(CheckpointKind.LOCK_WAIT, "reshard-fence")
            spins += 1
            if spins >= _FENCE_MAX_SPINS:
                raise TransactionError(
                    "reshard write fence did not lift; the migration "
                    "appears stuck"
                )

    def fence_writes(self) -> None:
        """Raise the reshard write fence: new write transactions park.

        Reads — scatter-gather SELECTs, AS-OF queries, replica-routed
        reads — continue throughout; only :meth:`begin` (and therefore
        autocommit DML) and DDL wait. Callers must pair this with
        :meth:`unfence_writes`, fence or no swap.
        """
        self._write_fence = True

    def unfence_writes(self) -> None:
        self._write_fence = False

    def drain_writers(self, max_spins: int = _FENCE_MAX_SPINS) -> None:
        """Wait (cooperatively) until no write transaction is in flight.

        Called with the fence up: transactions begun before the fence may
        still be mid-commit, and their branches point at the pre-swap
        stores — swapping under them would tear the topology.
        """
        spins = 0
        while self._active_gtxns > 0:
            maybe_checkpoint(CheckpointKind.LOCK_WAIT, "reshard-drain")
            spins += 1
            if spins >= max_spins:
                raise TransactionError(
                    f"{self._active_gtxns} write transaction(s) never "
                    "finished while the reshard fence was up"
                )

    def apply_reshard(self, new_stores: dict[str, Database]) -> int:
        """Swap in a post-reshard topology; returns the new horizon CSN.

        The caller (:mod:`repro.cluster.reshard`) guarantees the write
        fence is up, no write transaction is in flight, and
        ``new_stores`` holds every row re-hashed onto its owner under
        the new shard count. The global CSN clock and the aligned log
        survive the swap (a synthetic aligned commit maps the new stores'
        local positions); AS-OF reads below the returned horizon now
        raise :class:`~repro.errors.TimeTravelError` because that
        history lives only on the departed stores. Replica sets are
        dropped — they follow the old primaries; re-attach after.
        """
        if not self._write_fence:
            raise TransactionError(
                "apply_reshard requires the write fence "
                "(call fence_writes() and drain_writers() first)"
            )
        if self._active_gtxns > 0:
            raise TransactionError(
                f"{self._active_gtxns} write transaction(s) still in "
                "flight; drain_writers() before swapping the topology"
            )
        key_registry = dict(self.router._keys)
        self.shards = list(new_stores.values())
        self.store_names = list(new_stores)
        self._by_name = dict(new_stores)
        self.router = ShardRouter(self.store_names)
        self.router._keys = key_registry
        self.reshard_horizon = self.coordinator.reshape(self._by_name)
        self.replica_sets = {}
        self._select_cache.clear()
        self._agg_cache.clear()
        return self.reshard_horizon

    # -- replication ---------------------------------------------------------

    def attach_replicas(
        self,
        n_replicas: int = 1,
        mode: str = "async",
        log_retain: int | None = None,
    ) -> dict[str, ReplicaSet]:
        """Give every shard a log-shipping replica set.

        Replicas bootstrap from each shard's current snapshot and then
        follow its commit stream (see :mod:`repro.db.replication`); wire a
        :class:`~repro.db.replication.ShardedReadRouter` on top to serve
        scatter-gather SELECTs from them. DML, 2PC, and DDL continue to
        run on the primaries (DDL reaches replicas through the shipped
        stream like any other change).
        """
        for store, shard in self.named_shards():
            replica_set = self.replica_sets.get(store)
            if replica_set is None:
                replica_set = ReplicaSet(shard, mode=mode, log_retain=log_retain)
                self.replica_sets[store] = replica_set
            for _ in range(n_replicas):
                replica_set.add_replica()
        return self.replica_sets

    def catch_up_replicas(self, limit: int | None = None) -> int:
        """Apply pending ship records on every shard's replicas."""
        resyncs_before = sum(
            rs.stats["resyncs"] for rs in self.replica_sets.values()
        )
        applied = sum(
            replica_set.catch_up(limit=limit)
            for replica_set in self.replica_sets.values()
        )
        if (
            sum(rs.stats["resyncs"] for rs in self.replica_sets.values())
            != resyncs_before
        ):
            # A resync replaced a replica database; cached scan nodes
            # keyed by the old instance would pin its full data copy.
            self._select_cache.clear()
        return applied

    def failover(self, store: str) -> Database:
        """Promote a replica of ``store`` to primary and re-point the shard.

        The old primary is fenced, every acknowledged commit is drained
        into the replicas, and the most-caught-up replica takes over the
        store name — in the shard list, the 2PC coordinator, and the
        replica set (which keeps shipping to the remaining replicas).
        Scatter/aggregate plan caches are dropped: their compiled nodes
        are bound to the demoted database's stores.
        """
        replica_set = self.replica_sets.get(store)
        if replica_set is None:
            raise ReplicationError(
                f"shard {store!r} has no replica set; call attach_replicas()"
            )
        old_primary = self._by_name[store]
        promoted = replica_set.promote()
        index = self.shards.index(old_primary)
        self.shards[index] = promoted
        self._by_name[store] = promoted
        self.coordinator.replace_store(store, promoted)
        self._select_cache.clear()
        self._agg_cache.clear()
        return promoted

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardedDatabase {self.name!r} shards={len(self.shards)} "
            f"global_csn={self.coordinator.global_csn}>"
        )
