"""The top-level Database object tying the substrate together.

A :class:`Database` owns the catalog, the versioned table stores and their
indexes, the transaction manager, the WAL, and the CDC stream. SQL comes in
through :meth:`execute`; TROD's interposition layer observes transaction
and statement events through the observer interface, which is the paper's
"interposes on every handler and database query" hook (§3.1), database side.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.db.backend import SimulatedBackend
from repro.db.cdc import CdcStream
from repro.db.index import IndexSet
from repro.db.pages import BufferPool, PageFileManager, PagedTableStore
from repro.db.pages.buffer import DEFAULT_POOL_PAGES
from repro.db.pages.page import DEFAULT_PAGE_SIZE
from repro.db.result import ResultSet
from repro.db.schema import Catalog, Column, TableSchema
from repro.db.types import ColumnType
from repro.db.sql.executor import (
    build_select_plan,
    compile_delete_plan,
    compile_update_plan,
    evaluate_as_of,
    execute_statement,
)
from repro.db.sql.nodes import (
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    DropIndexStmt,
    DropTableStmt,
    InsertStmt,
    SelectStmt,
    Statement,
    UpdateStmt,
)
from repro.db.sql.parser import parse_sql
from repro.db.storage import TableStore
from repro.db.timetravel import TimeTravel
from repro.db.txn.manager import (
    IsolationLevel,
    ReadRecord,
    Transaction,
    TransactionManager,
    TransactionStatus,
)
from repro.db.txn.wal import WalAbort, WriteAheadLog, recover_into
from repro.errors import (
    ExecutionError,
    FencedError,
    ReadOnlyError,
    StorageError,
    TimeTravelError,
    UnavailableError,
    WalError,
)

_STMT_CACHE_LIMIT = 1024
_PLAN_CACHE_LIMIT = 512

#: Environment knob: overrides the default storage backend when
#: ``Database(storage=None)``. CI uses it to run the whole suite paged.
STORAGE_ENV_VAR = "REPRO_STORAGE"
_STORAGE_BACKENDS = ("memory", "paged")

#: File inside a paged data directory holding schemas, aliases, secondary
#: index definitions, and the vacuum horizon — everything recovery needs
#: that is not in the WAL.
CATALOG_FILE = "catalog.json"


def _schema_to_meta(schema: TableSchema) -> dict[str, Any]:
    # Serialize only the *explicit* unique constraints: TableSchema
    # re-derives the primary-key and single-UNIQUE-column entries in its
    # constructor (same filter ``ddl()`` applies when rendering DDL).
    explicit = [
        list(constraint)
        for constraint in schema.unique_constraints
        if constraint != schema.primary_key
        and not (len(constraint) == 1 and schema.column(constraint[0]).unique)
    ]
    return {
        "name": schema.name,
        "columns": [
            {
                "name": c.name,
                "type": c.col_type.value,
                "nullable": c.nullable,
                "primary_key": c.primary_key,
                "unique": c.unique,
                "default": c.default,
            }
            for c in schema.columns
        ],
        "unique_constraints": explicit,
    }


def _schema_from_meta(meta: dict[str, Any]) -> TableSchema:
    columns = [
        Column(
            name=c["name"],
            col_type=ColumnType(c["type"]),
            nullable=c["nullable"],
            primary_key=c["primary_key"],
            unique=c["unique"],
            default=c["default"],
        )
        for c in meta["columns"]
    ]
    return TableSchema(
        meta["name"],
        columns,
        unique_constraints=[tuple(uc) for uc in meta["unique_constraints"]],
    )


@dataclass
class StatementTrace:
    """What one executed statement did; handed to observers.

    Reads are per-row :class:`ReadRecord` entries; writes are
    ``(op, table, row_id)`` triples so TROD can later attach the query
    text to the CDC records the commit will emit.
    """

    sql: str
    kind: str  # 'select' | 'insert' | 'update' | 'delete' | 'ddl'
    reads: list[ReadRecord] = field(default_factory=list)
    writes: list[tuple[str, str, int]] = field(default_factory=list)
    rowcount: int = 0


class Database:
    """An embedded, transactional, multi-version SQL database."""

    def __init__(
        self,
        name: str = "db",
        backend: SimulatedBackend | None = None,
        wal_path: str | None = None,
        cdc_retain: int | None = None,
        wal_group_size: int = 1,
        wal_fsync: bool = False,
        storage: str | None = None,
        data_dir: str | None = None,
        buffer_pool_pages: int = DEFAULT_POOL_PAGES,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        self.name = name
        self.backend = backend
        self.catalog = Catalog()
        if storage is None:
            storage = os.environ.get(STORAGE_ENV_VAR) or "memory"
        if storage not in _STORAGE_BACKENDS:
            raise StorageError(
                f"unknown storage backend {storage!r} "
                f"(expected one of {_STORAGE_BACKENDS})"
            )
        #: Which storage backend row versions live in: "memory" keeps
        #: them in Python tuples, "paged" in slotted page files under
        #: ``data_dir`` behind an LRU buffer pool.
        self.storage = storage
        self.data_dir: str | None = None
        self._page_manager: PageFileManager | None = None
        self._buffer_pool: BufferPool | None = None
        self._meta_path: str | None = None
        self._ephemeral_dir_cleanup = None
        self._recovering = False
        self._closed = False
        #: Secondary (non-constraint) index definitions, persisted to the
        #: catalog file so recovery can rebuild them.
        self._index_meta: list[dict[str, Any]] = []
        #: How the last open went: a reopened paged database replays only
        #: the WAL tail, and these counters prove it (tests assert
        #: ``changes_reconciled == 0`` after a clean checkpointed close).
        self.recovery_stats: dict[str, Any] = {
            "mode": "fresh",
            "wal_commits": 0,
            "tail_commits": 0,
            "changes_reconciled": 0,
            "changes_skipped": 0,
        }
        if storage == "paged":
            if data_dir is None:
                # Ephemeral database: pages live in a temp directory that
                # is removed at close (or GC). Pass data_dir to persist.
                data_dir = tempfile.mkdtemp(prefix=f"repro-{name}-")
                self._ephemeral_dir_cleanup = weakref.finalize(
                    self, shutil.rmtree, data_dir, ignore_errors=True
                )
            self.data_dir = data_dir
            self._page_manager = PageFileManager(data_dir, page_size)
            self._buffer_pool = BufferPool(buffer_pool_pages)
            self._meta_path = os.path.join(data_dir, CATALOG_FILE)
            if wal_path is None:
                wal_path = os.path.join(data_dir, "wal.jsonl")
        recover_paged = self._meta_path is not None and os.path.exists(
            self._meta_path
        )
        if recover_paged and wal_path is not None and os.path.exists(wal_path):
            self.wal = WriteAheadLog.load(
                wal_path, attach=True, group_size=wal_group_size, fsync=wal_fsync
            )
        else:
            self.wal = WriteAheadLog(
                wal_path, group_size=wal_group_size, fsync=wal_fsync
            )
        if self._buffer_pool is not None:
            # The WAL rule: a commit's log record must be durable before
            # any page reflecting it is written back (otherwise a group-
            # commit crash could leave a partial commit on disk that tail
            # replay cannot fill in).
            self._buffer_pool.before_write = self.wal.flush
        self.cdc = CdcStream(retain=cdc_retain)
        self.txn_manager = TransactionManager(self)
        self.observers: list[Any] = []
        #: Set by replication failover: a fenced (demoted) primary accepts
        #: no new transactions and no further commits, so a split brain
        #: cannot acknowledge writes the promoted replica never sees.
        self.fenced = False
        #: Simulated node failure: a crashed database answers nothing —
        #: not even reads — until revived. The cluster heartbeat detector
        #: probes this via :meth:`ping` and drives failover from it.
        self.crashed = False
        #: Set on replica databases. Writes and DDL through the SQL
        #: surface are rejected (changes arrive only via the shipped
        #: stream), and autocommitted SELECTs abort their transaction
        #: instead of committing it — a commit would consume a CSN and
        #: desynchronize the replica's clock from the primary's.
        self.read_only = False
        #: Why the database is read-only, when the default "is a replica"
        #: explanation is wrong — e.g. a quorum-degraded primary sets
        #: this so rejected writers learn the quorum is lost (and that
        #: the condition is temporary), not that they hit a replica.
        self.read_only_reason: str | None = None
        #: When True, SELECTs record per-row read provenance on their
        #: transaction. TROD switches this on when it attaches.
        self.track_reads = False
        #: Rows a scan pulls between cooperative-scheduler yield points
        #: (and the granularity of streamed-cursor memory use). 0
        #: disables the yield points entirely.
        self.scan_batch_size = 256
        #: Compile cached SELECT plans into batch-at-a-time programs
        #: (repro.db.sql.compile): expressions lower to specialized
        #: Python once per cached plan and operators process whole row
        #: batches per call. Results are identical to the row-at-a-time
        #: interpreter; turn off to debug with the closure tree. Read
        #: provenance (``track_reads``) and attached observers always
        #: force the row path regardless of this knob.
        self.compiled_execution = True
        #: Plan the WHERE clause's single-table conjuncts beneath joins,
        #: inside their owning table's scan. Off, every WHERE conjunct
        #: runs in one filter above the joins — useful to measure what
        #: the rewrite buys.
        self.predicate_pushdown_enabled = True
        #: Batch-executor counters (mirrors ``plan_cache_stats``):
        #: plans compiled, batches processed, and rows removed by
        #: scan-level vs post-join filters.
        self.executor_stats = {
            "plans_compiled": 0,
            "batches_processed": 0,
            "rows_filtered_at_scan": 0,
            "rows_filtered_post_join": 0,
        }
        self.history_horizon = 0
        self._stores: dict[str, TableStore] = {}
        self._indexes: dict[str, IndexSet] = {}
        self._stmt_cache: dict[str, Statement] = {}
        #: Compiled plans keyed by (sql, catalog epoch, isolation) for
        #: SELECT and ("dml", sql, catalog epoch) for UPDATE/DELETE. Plan
        #: nodes carry no per-execution state, so one compiled tree serves
        #: every execution of the same statement shape.
        self._plan_cache: dict[tuple, Any] = {}
        #: Bumped by every DDL / catalog change; stale plans (which hold
        #: references to schemas and index objects) never survive a bump.
        self.catalog_epoch = 0
        self.plan_cache_enabled = True
        self.plan_cache_stats = {
            "hits": 0,
            "misses": 0,
            "dml_hits": 0,
            "dml_misses": 0,
        }
        if recover_paged:
            self._recover_paged()

    # -- schema management ---------------------------------------------------

    def bump_catalog_epoch(self) -> None:
        """Invalidate cached plans after any catalog or index change."""
        self.catalog_epoch += 1
        self._plan_cache.clear()

    def create_table(self, schema: TableSchema) -> None:
        self.catalog.create_table(schema)
        key = self.catalog.resolve(schema.name)
        if self.storage == "paged":
            file = self._page_manager.create(key)
            self._stores[key] = PagedTableStore(
                schema, self._page_manager, self._buffer_pool, key, file
            )
        else:
            self._stores[key] = TableStore(schema)
        self._indexes[key] = IndexSet(schema)
        self.bump_catalog_epoch()
        self._save_catalog_meta()
        self.notify("table_created", schema)

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        if if_exists and not self.catalog.has_table(name):
            return
        key = self.catalog.resolve(name)
        self.catalog.drop_table(name)
        del self._stores[key]
        del self._indexes[key]
        if self.storage == "paged":
            self._buffer_pool.drop_file(self._page_manager.get(key))
            self._page_manager.drop(key)
        self._index_meta = [m for m in self._index_meta if m["table"] != key]
        self.bump_catalog_epoch()
        self._save_catalog_meta()
        self.notify("table_dropped", key)

    def add_table_alias(self, alias: str, table: str) -> None:
        self.catalog.add_alias(alias, table)
        self.bump_catalog_epoch()
        self._save_catalog_meta()
        self.notify("alias_added", alias, table)

    def create_index(
        self,
        name: str,
        table: str,
        columns: Sequence[str],
        unique: bool = False,
        sorted_index: bool = False,
    ) -> None:
        key = self.catalog.resolve(table)
        index_set = self._indexes[key]
        if sorted_index:
            index = index_set.create_sorted_index(name, columns)
        else:
            index = index_set.create_hash_index(name, columns, unique=unique)
        for row_id, values in self._stores[key].scan(None):
            index.add(row_id, values)
        self._index_meta.append(
            {
                "name": name,
                "table": key,
                "columns": list(columns),
                "unique": bool(unique),
                "sorted": bool(sorted_index),
            }
        )
        self.bump_catalog_epoch()
        self._save_catalog_meta()
        self.notify(
            "index_created", name, key, tuple(columns), unique, sorted_index
        )

    def drop_index(self, name: str, table: str, if_exists: bool = False) -> None:
        if if_exists and not self.catalog.has_table(table):
            # DROP TABLE removes its indexes implicitly; an idempotent
            # cleanup running afterwards must stay a no-op.
            return
        key = self.catalog.resolve(table)
        self._indexes[key].drop_index(name, if_exists=if_exists)
        self._index_meta = [
            m
            for m in self._index_meta
            if not (m["table"] == key and m["name"].lower() == name.lower())
        ]
        self.bump_catalog_epoch()
        self._save_catalog_meta()
        self.notify("index_dropped", name, key)

    def store(self, table: str) -> TableStore:
        return self._stores[self.catalog.resolve(table)]

    def index_set(self, table: str) -> IndexSet:
        return self._indexes[self.catalog.resolve(table)]

    # -- paged storage: persistence, recovery, checkpoint ---------------------

    def _save_catalog_meta(self) -> None:
        """Atomically persist schemas/aliases/indexes for paged recovery.

        Written on every DDL change (not just at checkpoint) so the
        catalog file always exists from the first CREATE TABLE on — a
        crash between DDL and the first checkpoint must still recover.
        """
        if self._meta_path is None or self._recovering:
            return
        meta = {
            "tables": [
                _schema_to_meta(self.catalog.get(name))
                for name in self.catalog.table_names()
            ],
            "aliases": self.catalog.aliases(),
            "indexes": self._index_meta,
            "history_horizon": self.history_horizon,
        }
        tmp_path = self._meta_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
        os.replace(tmp_path, self._meta_path)

    def _recover_paged(self) -> None:
        """Open the page files and replay only the WAL tail.

        Each table's file header records ``flushed_csn`` — the newest
        commit its pages are guaranteed to contain. Commits at or below
        it are skipped outright; the tail above it replays through
        :meth:`PagedTableStore.reconcile`, which is idempotent because
        buffer-pool evictions may have pushed pages *newer* than the
        header to disk before the crash.
        """
        with open(self._meta_path, encoding="utf-8") as handle:
            meta = json.load(handle)
        stats = self.recovery_stats
        stats["mode"] = "paged"
        self._recovering = True
        try:
            for table_meta in meta["tables"]:
                schema = _schema_from_meta(table_meta)
                self.catalog.create_table(schema)
                key = self.catalog.resolve(schema.name)
                self._stores[key] = PagedTableStore.load(
                    schema, self._page_manager, self._buffer_pool, key
                )
                self._indexes[key] = IndexSet(schema)
            for alias, target in meta.get("aliases", {}).items():
                self.catalog.add_alias(alias, target)
            self.history_horizon = meta.get("history_horizon", 0)
            manager = self.txn_manager
            for commit in self.wal.commits():
                in_tail = False
                for change in commit.changes:
                    store = self._stores.get(change.table)
                    if store is None:
                        raise WalError(
                            f"WAL references unknown table {change.table!r}"
                        )
                    if commit.csn > store.flushed_csn:
                        in_tail = True
                        if store.reconcile(change, commit.csn):
                            stats["changes_reconciled"] += 1
                        else:
                            stats["changes_skipped"] += 1
                if in_tail:
                    stats["tail_commits"] += 1
                manager.commit_index[commit.txn_id] = commit.csn
                manager.csn_index[commit.csn] = commit.txn_id
                manager._next_txn_id = max(
                    manager._next_txn_id, commit.txn_id + 1
                )
            # Prepared-but-undecided branches hold txn ids too; the
            # counter must clear them or a post-recovery transaction
            # could collide with an in-doubt branch's identity.
            for prepare in self.wal._prepares:
                manager._next_txn_id = max(
                    manager._next_txn_id, prepare.txn_id + 1
                )
            stats["wal_commits"] = len(self.wal)
            last = self.wal.last_csn()
            for key, store in self._stores.items():
                store.finish_recovery()
                last = max(last, store.last_write_csn)
                self._indexes[key].populate(store.scan(None))
            manager.last_csn = last
            for index_meta in meta.get("indexes", []):
                self.create_index(
                    index_meta["name"],
                    index_meta["table"],
                    index_meta["columns"],
                    unique=index_meta["unique"],
                    sorted_index=index_meta["sorted"],
                )
        finally:
            self._recovering = False

    def in_doubt_prepares(self) -> list[Any]:
        """Durably prepared 2PC branches with no commit/abort record.

        Non-empty only after reopening a database that crashed between a
        coordinator's prepare and phase-2; the coordinator's
        :meth:`~repro.db.multistore.MultiStoreCoordinator.recover_in_doubt`
        resolves them against its decision log.
        """
        return self.wal.in_doubt()

    def resolve_in_doubt(self, decide: Callable[[Any], bool]) -> dict[str, int]:
        """Resolve every in-doubt prepared branch (presumed abort).

        ``decide`` is called with each in-doubt
        :class:`~repro.db.txn.wal.WalPrepare` (in WAL order) and returns
        True to commit — the branch's prepared changes are applied at the
        next CSN and re-logged as a normal commit — or False to abort,
        which appends a WAL abort record so the prepare never reads as
        in-doubt again. Returns ``{"committed": n, "aborted": n}``.
        """
        resolved = {"committed": 0, "aborted": 0}
        for prepare in self.in_doubt_prepares():
            # Same-process recovery (the simulated crash never actually
            # killed this interpreter): the prepared branch may still
            # sit in the active table holding its locks. Release the
            # zombie first — after a real restart this finds nothing.
            zombie = self.txn_manager.active.pop(prepare.txn_id, None)
            if zombie is not None:
                self.txn_manager.locks.release_all(prepare.txn_id)
                zombie.status = TransactionStatus.ABORTED
            if decide(prepare):
                self.txn_manager.commit_recovered(prepare)
                resolved["committed"] += 1
            else:
                self.wal.append_abort(
                    WalAbort(txn_id=prepare.txn_id, gtxn_id=prepare.gtxn_id)
                )
                resolved["aborted"] += 1
        self.wal.flush()
        return resolved

    def checkpoint(self) -> int:
        """Flush the WAL and (paged) every dirty page, then advance each
        table's durable ``flushed_csn`` to the current commit position.

        After a checkpoint, reopening the database replays nothing: the
        page files alone carry the full state. Returns the CSN the
        checkpoint covers.
        """
        self.wal.flush()
        csn = self.last_csn
        if self.storage == "paged":
            for store in self._stores.values():
                store.flush(csn)
            self._save_catalog_meta()
        return csn

    def close(self) -> None:
        """Checkpoint (paged), then release every file handle.

        An ephemeral paged database (no explicit ``data_dir``) deletes
        its temp directory here; a persistent one can be reopened with
        ``Database(storage="paged", data_dir=...)``.
        """
        if self._closed:
            return
        self._closed = True
        if self.storage == "paged" and self._page_manager is not None:
            try:
                self.checkpoint()
            finally:
                self._page_manager.close_all()
        self.wal.close()
        if self._ephemeral_dir_cleanup is not None:
            self._ephemeral_dir_cleanup()

    @property
    def storage_stats(self) -> dict[str, Any]:
        """Storage-tier counters (mirrors the ``executor_stats`` pattern;
        :class:`~repro.db.sharding.ShardedDatabase` sums the numeric
        values across shards)."""
        stats: dict[str, Any] = {
            "storage": self.storage,
            "tables": len(self._stores),
            "live_rows": sum(
                store.row_count() for store in self._stores.values()
            ),
            "versions": sum(
                store.version_count() for store in self._stores.values()
            ),
        }
        if self.storage == "paged":
            for key, value in self._buffer_pool.snapshot_stats().items():
                stats[f"pool_{key}"] = value
            for key, value in self._page_manager.stats().items():
                stats[f"file_{key}"] = value
            stats["orphan_pages_reclaimed"] = sum(
                getattr(store, "orphan_pages_reclaimed", 0)
                for store in self._stores.values()
            )
        return stats

    # -- availability ----------------------------------------------------------

    def ping(self) -> bool:
        """Liveness probe for the cluster heartbeat detector.

        Raises :class:`UnavailableError` when the node is crashed; a
        fenced or read-only database still answers (it is alive, just
        demoted), so the detector can tell "dead" from "demoted".
        """
        self._check_available()
        return True

    def _check_available(self) -> None:
        if self.crashed:
            raise UnavailableError(
                f"database {self.name!r} is down (simulated crash); "
                "revive it or fail over"
            )

    # -- transactions -----------------------------------------------------------

    def begin(
        self,
        isolation: IsolationLevel = IsolationLevel.SERIALIZABLE,
        info: dict[str, Any] | None = None,
    ) -> Transaction:
        self._check_available()
        if self.fenced:
            raise FencedError(
                f"database {self.name!r} is fenced (demoted primary); "
                "route traffic to the promoted replica"
            )
        if self.backend is not None:
            self.backend.on_begin()
        return self.txn_manager.begin(isolation=isolation, info=info)

    # -- SQL --------------------------------------------------------------------

    def _parse(self, sql: str) -> Statement:
        cached = self._stmt_cache.get(sql)
        if cached is not None:
            return cached
        stmt = parse_sql(sql)
        if len(self._stmt_cache) >= _STMT_CACHE_LIMIT:
            self._stmt_cache.clear()
        self._stmt_cache[sql] = stmt
        return stmt

    def select_plan(
        self, stmt: SelectStmt, txn: Transaction, sql: str | None
    ) -> tuple[Any, list[str]]:
        """The compiled plan for ``stmt``, from the plan cache when possible.

        ``sql`` is the cache key (None disables caching — e.g. the inner
        SELECT of INSERT ... SELECT has no statement text of its own). The
        isolation level is part of the key because it decides index-probe
        eligibility; the catalog epoch invalidates plans across DDL.
        """
        if not self.plan_cache_enabled or sql is None:
            return build_select_plan(stmt, self, txn)
        key = (
            sql,
            self.catalog_epoch,
            txn.isolation,
            # Both knobs change the physical plan (compiled programs,
            # filter placement); flipping one must not serve stale trees.
            self.compiled_execution,
            self.predicate_pushdown_enabled,
        )
        entry = self._plan_cache.get(key)
        if entry is not None:
            self.plan_cache_stats["hits"] += 1
            return entry
        self.plan_cache_stats["misses"] += 1
        entry = build_select_plan(stmt, self, txn)
        if len(self._plan_cache) >= _PLAN_CACHE_LIMIT:
            self._plan_cache.clear()
        self._plan_cache[key] = entry
        return entry

    def dml_plan(self, stmt: UpdateStmt | DeleteStmt, sql: str | None) -> Any:
        """Compiled WHERE/assignment closures for UPDATE/DELETE statements.

        Shares the epoch-invalidated plan cache with SELECT plans (keys are
        disjoint tuples). Isolation is not part of the key: DML scans never
        take index probes, so the compiled closures are isolation-agnostic.
        """
        compile_fn = (
            compile_update_plan if isinstance(stmt, UpdateStmt) else compile_delete_plan
        )
        if not self.plan_cache_enabled or sql is None:
            return compile_fn(self, stmt)
        key = ("dml", sql, self.catalog_epoch)
        entry = self._plan_cache.get(key)
        if entry is not None:
            self.plan_cache_stats["dml_hits"] += 1
            return entry[0]
        self.plan_cache_stats["dml_misses"] += 1
        compiled = compile_fn(self, stmt)
        if len(self._plan_cache) >= _PLAN_CACHE_LIMIT:
            self._plan_cache.clear()
        # Wrapped in a 1-tuple so a None delete predicate still caches.
        self._plan_cache[key] = (compiled,)
        return compiled

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        txn: Transaction | None = None,
        stream: bool = False,
    ) -> ResultSet:
        """Execute one statement, autocommitting when no txn is passed.

        ``stream=True`` asks for a *streamed* SELECT result: rows flow
        lazily from the executor's generator pipeline instead of being
        materialized, and the result is pinned to the statement's
        snapshot before this method returns — it keeps serving that
        snapshot even though the backing (ephemeral or autocommitted)
        transaction finishes immediately. Streaming silently degrades to
        materialization when read provenance is on (``track_reads`` —
        TROD's statement traces need the full drain) or any observer is
        attached (statement traces carry rowcounts), and for non-SELECT
        statements.
        """
        stmt = self._parse(sql)
        self._check_available()
        if self.read_only and not isinstance(stmt, SelectStmt):
            raise ReadOnlyError(
                f"database {self.name!r} is read-only: "
                + (
                    self.read_only_reason
                    or "writes and DDL arrive only through the replication "
                    "stream (this is a read-only replica)"
                )
            )
        if isinstance(stmt, SelectStmt) and stmt.as_of is not None:
            # ``SELECT ... AS OF <csn>``: a historical read, independent
            # of any enclosing transaction's snapshot.
            return self._execute_select_as_of(stmt, params, sql)
        if isinstance(
            stmt, (CreateTableStmt, DropTableStmt, CreateIndexStmt, DropIndexStmt)
        ):
            # DDL is non-transactional, as in most engines.
            return execute_statement(self, None, stmt, params, sql)  # type: ignore[arg-type]
        autocommit = txn is None
        active = txn if txn is not None else self.begin()
        try:
            if self.backend is not None:
                self.backend.on_statement()
            active.begin_statement()
            streaming = (
                stream
                and isinstance(stmt, SelectStmt)
                and not self.track_reads
                and not self.observers
            )
            result = execute_statement(
                self, active, stmt, params, sql, stream=streaming
            )
            if streaming and result.streaming:
                # Pin the pipeline to the live transaction before the
                # autocommit below finishes it; every scan resolves its
                # snapshot here, so the stream survives the commit/abort.
                result.prime()
            else:
                trace = StatementTrace(
                    sql=sql,
                    kind=result.kind,
                    reads=active.statement_reads(),
                    writes=self._writes_of(stmt, result),
                    rowcount=result.rowcount,
                )
                self.notify("statement_executed", active, trace)
            if autocommit:
                if self.read_only:
                    # Replica read: committing would consume a CSN and
                    # desynchronize the shipped stream; aborting returns
                    # the same rows and burns nothing.
                    self.txn_manager.abort(active)
                else:
                    active.commit()
            return result
        except Exception:
            if autocommit:
                self.txn_manager.abort(active)
            raise

    def _execute_select_as_of(
        self, stmt: SelectStmt, params: Sequence[Any], sql: str
    ) -> ResultSet:
        """Run a ``SELECT ... AS OF <csn>`` against the version store.

        The read executes under an ephemeral SNAPSHOT transaction whose
        snapshot is rewound to ``csn`` and which is aborted afterwards —
        historical reads must not consume CSNs (on a replica that would
        desynchronize the shipped stream, and nowhere do they represent a
        new commit). Observers still see the statement trace, so TROD's
        read provenance covers time-travel reads too.
        """
        csn = evaluate_as_of(stmt, params)
        if csn < self.history_horizon:
            raise TimeTravelError(
                f"csn {csn} predates the vacuum horizon "
                f"({self.history_horizon})"
            )
        if csn > self.txn_manager.last_csn:
            raise TimeTravelError(
                f"csn {csn} is in the future (last committed is "
                f"{self.txn_manager.last_csn})"
            )
        active = self.begin(IsolationLevel.SNAPSHOT)
        active.snapshot_csn = csn
        try:
            if self.backend is not None:
                self.backend.on_statement()
            active.begin_statement()
            result = execute_statement(self, active, stmt, params, sql)
            trace = StatementTrace(
                sql=sql,
                kind=result.kind,
                reads=active.statement_reads(),
                rowcount=result.rowcount,
            )
            self.notify("statement_executed", active, trace)
            return result
        finally:
            self.txn_manager.abort(active)

    def _writes_of(
        self, stmt: Statement, result: ResultSet
    ) -> list[tuple[str, str, int]]:
        if isinstance(stmt, InsertStmt):
            table = self.catalog.resolve(stmt.table)
            return [("insert", table, rid) for rid in result.row_ids]
        if isinstance(stmt, UpdateStmt):
            table = self.catalog.resolve(stmt.table.table)
            return [("update", table, rid) for rid in result.row_ids]
        if isinstance(stmt, DeleteStmt):
            table = self.catalog.resolve(stmt.table.table)
            return [("delete", table, rid) for rid in result.row_ids]
        return []

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Read-only convenience wrapper around :meth:`execute`."""
        return self.execute(sql, params)

    def explain(self, sql: str) -> list[str]:
        """The plan tree a SELECT would execute (root first, indented).

        Useful for verifying pushdown, join algorithm, and index-probe
        decisions; only SELECT statements have plans.
        """
        stmt = self._parse(sql)
        if not isinstance(stmt, SelectStmt):
            raise ExecutionError("EXPLAIN supports SELECT statements only")
        txn = self.txn_manager.begin()
        try:
            plan, _names = self.select_plan(stmt, txn, sql)
            return plan.explain()
        finally:
            self.txn_manager.abort(txn)

    # -- direct (non-SQL) access -----------------------------------------------

    def insert_row(
        self,
        table: str,
        values: dict[str, Any],
        txn: Transaction | None = None,
    ) -> int:
        """Programmatic INSERT used by tooling (bypasses SQL parsing)."""
        if self.read_only:
            raise ReadOnlyError(
                f"database {self.name!r} is read-only: "
                + (self.read_only_reason or "this is a read-only replica")
            )
        schema = self.catalog.get(table)
        coerced = schema.coerce_row(values)
        autocommit = txn is None
        active = txn if txn is not None else self.begin()
        try:
            row_id = active.insert(table, coerced)
            if autocommit:
                active.commit()
            return row_id
        except Exception:
            if autocommit:
                self.txn_manager.abort(active)
            raise

    def table_rows(self, table: str, csn: int | None = None) -> list[dict[str, Any]]:
        """Committed rows of a table as dicts (latest or as-of ``csn``)."""
        schema = self.catalog.get(table)
        return [
            schema.row_dict(values)
            for _row_id, values in self.store(table).scan(csn)
        ]

    def snapshot_rows(self, table: str) -> list[tuple[int, tuple]]:
        """Latest committed ``(row_id, values)`` pairs of one table.

        Part of the :class:`~repro.db.connection.Engine` surface: TROD's
        attach-time snapshot capture uses it so the same code path works
        on single-node and sharded engines.
        """
        return list(self.store(table).scan(None))

    def bulk_load(self, table: str, rows: Sequence[tuple[int, tuple]]) -> None:
        """Load pre-validated rows directly at CSN 0 (restore path).

        Row ids are preserved; indexes are maintained. Only meaningful on
        a table with no committed history of its own.
        """
        store = self.store(table)
        indexes = self.index_set(table)
        for row_id, values in rows:
            store.apply_insert(values, 0, row_id=row_id)
            indexes.on_insert(row_id, values)

    # -- maintenance ----------------------------------------------------------

    def vacuum(self, keep_after_csn: int) -> int:
        """Garbage-collect row versions older than ``keep_after_csn``."""
        removed = 0
        for store in self._stores.values():
            removed += store.vacuum(keep_after_csn)
        self.history_horizon = max(self.history_horizon, keep_after_csn)
        self._save_catalog_meta()
        return removed

    @property
    def time_travel(self) -> TimeTravel:
        return TimeTravel(self)

    @property
    def last_csn(self) -> int:
        return self.txn_manager.last_csn

    @property
    def last_commit_csn(self) -> int:
        """The engine-neutral commit position (local CSN here).

        Every :class:`~repro.db.connection.Engine` exposes this so
        sessions and ``AS OF`` bookmarks are taken the same way whether
        the engine counts local CSNs (single node, replicated) or global
        CSNs (sharded).
        """
        return self.txn_manager.last_csn

    # -- observers ---------------------------------------------------------------

    def add_observer(self, observer: Any) -> None:
        self.observers.append(observer)

    def remove_observer(self, observer: Any) -> None:
        try:
            self.observers.remove(observer)
        except ValueError:
            pass

    def notify(self, event: str, *args: Any) -> None:
        for observer in self.observers:
            hook = getattr(observer, event, None)
            if hook is not None:
                hook(*args)

    # -- recovery ------------------------------------------------------------------

    @staticmethod
    def recover(schemas: Sequence[TableSchema], wal_path: str) -> "Database":
        """Rebuild a database from its schema definitions plus a WAL file."""
        db = Database(name="recovered")
        for schema in schemas:
            db.create_table(schema)
        wal = WriteAheadLog.load(wal_path)
        stores = {db.catalog.resolve(s.name): db.store(s.name) for s in schemas}
        last = recover_into(stores, wal.commits())
        db.txn_manager.last_csn = last
        for key, store in stores.items():
            db._indexes[key].populate(store.scan(None))
        for commit in wal.commits():
            db.txn_manager.commit_index[commit.txn_id] = commit.csn
            db.txn_manager.csn_index[commit.csn] = commit.txn_id
            db.txn_manager._next_txn_id = max(
                db.txn_manager._next_txn_id, commit.txn_id + 1
            )
        return db

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Database {self.name!r} tables={len(self._stores)} "
            f"csn={self.txn_manager.last_csn}>"
        )
