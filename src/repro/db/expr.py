"""Expression AST shared by the SQL parser, planner, and executor.

Expressions evaluate against a :class:`Scope` (column name -> value
bindings, plus statement parameters). SQL three-valued logic is
implemented faithfully: comparisons involving NULL yield NULL, ``AND`` /
``OR`` follow Kleene logic, and WHERE treats anything but TRUE as
filtered out.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable, Sequence

from repro.db.types import compare_values
from repro.errors import ExecutionError


class Scope:
    """Column bindings for one logical row during evaluation.

    Bindings are keyed by ``(qualifier, column)`` with lowercase strings;
    unqualified lookups succeed only when unambiguous. ``params`` holds
    positional statement parameters (``?`` placeholders).
    """

    __slots__ = ("_qualified", "_unqualified", "params")

    _AMBIGUOUS = object()

    def __init__(self, params: Sequence[Any] = ()):
        self._qualified: dict[tuple[str, str], Any] = {}
        self._unqualified: dict[str, Any] = {}
        self.params = params

    def bind(self, qualifier: str | None, column: str, value: Any) -> None:
        col = column.lower()
        if qualifier is not None:
            self._qualified[(qualifier.lower(), col)] = value
        if col in self._unqualified and self._unqualified[col] is not value:
            self._unqualified[col] = Scope._AMBIGUOUS
        else:
            self._unqualified[col] = value

    def bind_row(
        self, qualifier: str | None, columns: Iterable[str], values: Sequence[Any]
    ) -> None:
        for column, value in zip(columns, values):
            self.bind(qualifier, column, value)

    def lookup(self, qualifier: str | None, column: str) -> Any:
        col = column.lower()
        if qualifier is not None:
            key = (qualifier.lower(), col)
            if key in self._qualified:
                return self._qualified[key]
            raise ExecutionError(f"unknown column {qualifier}.{column}")
        if col in self._unqualified:
            value = self._unqualified[col]
            if value is Scope._AMBIGUOUS:
                raise ExecutionError(f"ambiguous column reference: {column}")
            return value
        raise ExecutionError(f"unknown column {column}")

    def child(self) -> "Scope":
        """A copy sharing params; used for nested evaluation contexts."""
        scope = Scope(self.params)
        scope._qualified = dict(self._qualified)
        scope._unqualified = dict(self._unqualified)
        return scope


class Expr:
    """Base class for expression nodes."""

    def eval(self, scope: Scope) -> Any:
        raise NotImplementedError

    def sql(self) -> str:
        """Render back to SQL text (used in provenance ``Query`` columns)."""
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterable["Expr"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.sql()})"


class Literal(Expr):
    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def eval(self, scope: Scope) -> Any:
        return self.value

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return repr(self.value)


class Param(Expr):
    """A positional ``?`` placeholder."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def eval(self, scope: Scope) -> Any:
        try:
            return scope.params[self.index]
        except IndexError:
            raise ExecutionError(
                f"statement uses parameter #{self.index + 1} but only "
                f"{len(scope.params)} were supplied"
            ) from None

    def sql(self) -> str:
        return "?"


class ColumnRef(Expr):
    __slots__ = ("qualifier", "column")

    def __init__(self, column: str, qualifier: str | None = None):
        self.qualifier = qualifier
        self.column = column

    def eval(self, scope: Scope) -> Any:
        return scope.lookup(self.qualifier, self.column)

    def sql(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.column}"
        return self.column


class Star(Expr):
    """``*`` in a projection or ``COUNT(*)``; never evaluated directly."""

    __slots__ = ("qualifier",)

    def __init__(self, qualifier: str | None = None):
        self.qualifier = qualifier

    def eval(self, scope: Scope) -> Any:  # pragma: no cover - guarded upstream
        raise ExecutionError("'*' cannot be evaluated as a scalar expression")

    def sql(self) -> str:
        return f"{self.qualifier}.*" if self.qualifier else "*"


def _null_if_any_null(fn: Callable[..., Any]) -> Callable[..., Any]:
    def wrapped(*args: Any) -> Any:
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapped


def _div(a: Any, b: Any) -> Any:
    if b == 0:
        raise ExecutionError("division by zero")
    result = a / b
    if isinstance(a, int) and isinstance(b, int) and result == int(result):
        return int(result)
    return result


def _mod(a: Any, b: Any) -> Any:
    if isinstance(a, str) or isinstance(b, str):
        # ``str % x`` is printf formatting in Python — it can "succeed" or
        # raise ValueError depending on the string's contents. SQL modulo
        # is numeric only; fail like every other operand-type mismatch.
        raise TypeError("modulo requires numeric operands")
    if b == 0:
        raise ExecutionError("modulo by zero")
    return a % b


def _concat(a: Any, b: Any) -> Any:
    return f"{a}{b}"


_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": _null_if_any_null(lambda a, b: a + b),
    "-": _null_if_any_null(lambda a, b: a - b),
    "*": _null_if_any_null(lambda a, b: a * b),
    "/": _null_if_any_null(_div),
    "%": _null_if_any_null(_mod),
    "||": _null_if_any_null(_concat),
}

_COMPARISONS: dict[str, Callable[[int], bool]] = {
    "=": lambda c: c == 0,
    "==": lambda c: c == 0,
    "!=": lambda c: c != 0,
    "<>": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}


class BinaryOp(Expr):
    """Arithmetic, comparison, and logical binary operators."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op.upper() if op.upper() in ("AND", "OR") else op
        self.left = left
        self.right = right

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def eval(self, scope: Scope) -> Any:
        op = self.op
        if op == "AND":
            left = self.left.eval(scope)
            if left is False:
                return False
            right = self.right.eval(scope)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self.left.eval(scope)
            if left is True:
                return True
            right = self.right.eval(scope)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False
        left = self.left.eval(scope)
        right = self.right.eval(scope)
        if op in _COMPARISONS:
            if left is None or right is None:
                return None
            return _COMPARISONS[op](compare_values(left, right))
        if op in _ARITH_OPS:
            try:
                return _ARITH_OPS[op](left, right)
            except TypeError:
                raise ExecutionError(
                    f"invalid operands for {op}: {left!r}, {right!r}"
                ) from None
        raise ExecutionError(f"unknown operator {op!r}")  # pragma: no cover

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


class UnaryOp(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        self.op = op.upper() if op.upper() == "NOT" else op
        self.operand = operand

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def eval(self, scope: Scope) -> Any:
        value = self.operand.eval(scope)
        if self.op == "NOT":
            if value is None:
                return None
            return not value
        if value is None:
            return None
        if self.op == "-":
            return -value
        if self.op == "+":
            return value
        raise ExecutionError(f"unknown unary operator {self.op!r}")  # pragma: no cover

    def sql(self) -> str:
        return f"({self.op} {self.operand.sql()})"


class IsNull(Expr):
    __slots__ = ("operand", "negated")

    def __init__(self, operand: Expr, negated: bool = False):
        self.operand = operand
        self.negated = negated

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def eval(self, scope: Scope) -> Any:
        is_null = self.operand.eval(scope) is None
        return not is_null if self.negated else is_null

    def sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.sql()} {suffix})"


class InList(Expr):
    __slots__ = ("operand", "items", "negated")

    def __init__(self, operand: Expr, items: Sequence[Expr], negated: bool = False):
        self.operand = operand
        self.items = tuple(items)
        self.negated = negated

    def children(self) -> tuple[Expr, ...]:
        return (self.operand, *self.items)

    def eval(self, scope: Scope) -> Any:
        value = self.operand.eval(scope)
        if value is None:
            return None
        saw_null = False
        found = False
        for item in self.items:
            candidate = item.eval(scope)
            if candidate is None:
                saw_null = True
            elif compare_values(value, candidate) == 0:
                found = True
                break
        if found:
            return not self.negated
        if saw_null:
            return None
        return self.negated

    def sql(self) -> str:
        inner = ", ".join(i.sql() for i in self.items)
        word = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {word} ({inner}))"


class Between(Expr):
    __slots__ = ("operand", "low", "high", "negated")

    def __init__(self, operand: Expr, low: Expr, high: Expr, negated: bool = False):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def children(self) -> tuple[Expr, ...]:
        return (self.operand, self.low, self.high)

    def eval(self, scope: Scope) -> Any:
        value = self.operand.eval(scope)
        low = self.low.eval(scope)
        high = self.high.eval(scope)
        if value is None or low is None or high is None:
            return None
        inside = (
            compare_values(value, low) >= 0 and compare_values(value, high) <= 0
        )
        return not inside if self.negated else inside

    def sql(self) -> str:
        word = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand.sql()} {word} {self.low.sql()} AND {self.high.sql()})"


class Like(Expr):
    __slots__ = ("operand", "pattern", "negated", "_cache")

    def __init__(self, operand: Expr, pattern: Expr, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        self._cache: tuple[str, re.Pattern] | None = None

    def children(self) -> tuple[Expr, ...]:
        return (self.operand, self.pattern)

    def _regex_for(self, pattern: str) -> re.Pattern:
        if self._cache is not None and self._cache[0] == pattern:
            return self._cache[1]
        out = []
        for char in pattern:
            if char == "%":
                out.append(".*")
            elif char == "_":
                out.append(".")
            else:
                out.append(re.escape(char))
        regex = re.compile("".join(out), re.DOTALL)
        self._cache = (pattern, regex)
        return regex

    def eval(self, scope: Scope) -> Any:
        value = self.operand.eval(scope)
        pattern = self.pattern.eval(scope)
        if value is None or pattern is None:
            return None
        matched = bool(self._regex_for(str(pattern)).fullmatch(str(value)))
        return not matched if self.negated else matched

    def sql(self) -> str:
        word = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.sql()} {word} {self.pattern.sql()})"


class Case(Expr):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    __slots__ = ("branches", "default")

    def __init__(self, branches: Sequence[tuple[Expr, Expr]], default: Expr | None):
        self.branches = tuple(branches)
        self.default = default

    def children(self) -> tuple[Expr, ...]:
        out: list[Expr] = []
        for cond, value in self.branches:
            out.extend((cond, value))
        if self.default is not None:
            out.append(self.default)
        return tuple(out)

    def eval(self, scope: Scope) -> Any:
        for cond, value in self.branches:
            if cond.eval(scope) is True:
                return value.eval(scope)
        if self.default is not None:
            return self.default.eval(scope)
        return None

    def sql(self) -> str:
        parts = ["CASE"]
        for cond, value in self.branches:
            parts.append(f"WHEN {cond.sql()} THEN {value.sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.sql()}")
        parts.append("END")
        return " ".join(parts)


class FuncCall(Expr):
    """Scalar or aggregate function call.

    Aggregates (``COUNT``, ``SUM``, ...) are recognized by the planner and
    never reach :meth:`eval`; scalar functions dispatch through the
    function registry in :mod:`repro.db.sql.functions`.
    """

    __slots__ = ("name", "args", "distinct", "star")

    def __init__(
        self,
        name: str,
        args: Sequence[Expr],
        distinct: bool = False,
        star: bool = False,
    ):
        self.name = name.upper()
        self.args = tuple(args)
        self.distinct = distinct
        self.star = star

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def eval(self, scope: Scope) -> Any:
        from repro.db.sql.functions import AGGREGATE_NAMES, call_scalar

        if self.name in AGGREGATE_NAMES:
            raise ExecutionError(
                f"aggregate {self.name} used outside an aggregating query"
            )
        return call_scalar(self.name, [a.eval(scope) for a in self.args])

    def sql(self) -> str:
        if self.star:
            return f"{self.name}(*)"
        inner = ", ".join(a.sql() for a in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


# ---------------------------------------------------------------------------
# Analysis helpers used by the planner
# ---------------------------------------------------------------------------


def column_refs(expr: Expr) -> list[ColumnRef]:
    return [node for node in expr.walk() if isinstance(node, ColumnRef)]


def contains_aggregate(expr: Expr) -> bool:
    from repro.db.sql.functions import AGGREGATE_NAMES

    return any(
        isinstance(node, FuncCall) and node.name in AGGREGATE_NAMES
        for node in expr.walk()
    )


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a WHERE tree into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Sequence[Expr]) -> Expr | None:
    """Rebuild an AND tree from conjuncts (None when empty)."""
    result: Expr | None = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("AND", result, conjunct)
    return result


def truthy(value: Any) -> bool:
    """SQL WHERE semantics: only TRUE passes (NULL and FALSE do not)."""
    return value is True


def assign_param_indexes(exprs: Iterable[Expr | None]) -> int:
    """Number ``?`` placeholders left-to-right across the statement.

    The parser creates :class:`Param` nodes with index -1; this pass
    assigns final positions and returns the parameter count.
    """
    count = 0
    for expr in exprs:
        if expr is None:
            continue
        for node in expr.walk():
            if isinstance(node, Param):
                node.index = count
                count += 1
    return count
