"""Table schemas and the database catalog.

A :class:`TableSchema` is an ordered list of typed :class:`Column` objects
plus integrity metadata (primary key, unique constraints). The
:class:`Catalog` maps case-insensitive table names (and aliases — TROD's
provenance store exposes its execution log both as ``Invocations``, the name
used by Table 1 of the paper, and ``Executions``, the name used by the
paper's SQL) to schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.db.types import ColumnType, coerce
from repro.errors import IntegrityError, SchemaError, TypeCoercionError


@dataclass(frozen=True)
class Column:
    """A single column definition.

    ``default`` is used when an INSERT omits the column; a missing column
    with no default becomes NULL (and fails validation if not nullable).
    """

    name: str
    col_type: ColumnType
    nullable: bool = True
    primary_key: bool = False
    unique: bool = False
    default: Any = None

    def __post_init__(self):
        # Quoted identifiers may contain spaces etc.; reject only names
        # that cannot round-trip through the lexer's quoting.
        if not self.name or '"' in self.name or "\n" in self.name:
            raise SchemaError(f"invalid column name: {self.name!r}")


class TableSchema:
    """An immutable description of one table.

    Column order matters: rows are stored as tuples in schema order.
    Lookups by name are case-insensitive, matching common SQL engines.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        unique_constraints: Iterable[Sequence[str]] = (),
    ):
        if not name:
            raise SchemaError("table name must be non-empty")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self._by_name: dict[str, int] = {}
        for idx, col in enumerate(self.columns):
            key = col.name.lower()
            if key in self._by_name:
                raise SchemaError(f"duplicate column {col.name!r} in table {name!r}")
            self._by_name[key] = idx
        self.primary_key: tuple[str, ...] = tuple(
            c.name for c in self.columns if c.primary_key
        )
        uniques: list[tuple[str, ...]] = []
        for constraint in unique_constraints:
            cols = tuple(self.column(c).name for c in constraint)
            if not cols:
                raise SchemaError("empty unique constraint")
            uniques.append(cols)
        for col in self.columns:
            if col.unique and not col.primary_key:
                uniques.append((col.name,))
        if self.primary_key:
            uniques.insert(0, self.primary_key)
        self.unique_constraints: tuple[tuple[str, ...], ...] = tuple(uniques)

    # -- column access ------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    def index_of(self, name: str) -> int:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def __len__(self) -> int:
        return len(self.columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{c.name} {c.col_type}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"

    # -- row validation -------------------------------------------------

    def coerce_row(self, values: Mapping[str, Any] | Sequence[Any]) -> tuple:
        """Validate and coerce a row into a storage tuple in schema order.

        Accepts either a mapping of column name -> value (missing columns
        take their defaults) or a sequence in schema order (must be the
        exact arity). NOT NULL violations raise :class:`IntegrityError`.
        """
        if isinstance(values, Mapping):
            lowered = {k.lower(): v for k, v in values.items()}
            unknown = set(lowered) - set(self._by_name)
            if unknown:
                raise SchemaError(
                    f"unknown column(s) {sorted(unknown)} for table {self.name!r}"
                )
            raw = [
                lowered.get(col.name.lower(), col.default) for col in self.columns
            ]
        else:
            raw = list(values)
            if len(raw) != len(self.columns):
                raise SchemaError(
                    f"table {self.name!r} expects {len(self.columns)} values, "
                    f"got {len(raw)}"
                )
        out = []
        for col, value in zip(self.columns, raw):
            try:
                coerced = coerce(value, col.col_type)
            except TypeCoercionError as exc:
                raise TypeCoercionError(
                    f"{self.name}.{col.name}: {exc}"
                ) from None
            if coerced is None and not col.nullable:
                raise IntegrityError(
                    f"NOT NULL violation: {self.name}.{col.name}"
                )
            out.append(coerced)
        return tuple(out)

    def row_dict(self, row: Sequence[Any]) -> dict[str, Any]:
        """Convert a storage tuple back to a column-name-keyed dict."""
        return dict(zip(self.column_names, row))

    def key_for(self, constraint: Sequence[str], row: Sequence[Any]) -> tuple:
        """Extract the values of ``constraint`` columns from a row tuple."""
        return tuple(row[self.index_of(c)] for c in constraint)

    def ddl(self) -> str:
        """Render this schema back to a CREATE TABLE statement.

        TROD stores this in the provenance database so a development
        database can be reconstructed without access to production.
        """
        parts = []
        for col in self.columns:
            bits = [col.name, col.col_type.value]
            if col.primary_key:
                bits.append("PRIMARY KEY")
            if not col.nullable and not col.primary_key:
                bits.append("NOT NULL")
            if col.unique and not col.primary_key:
                bits.append("UNIQUE")
            parts.append(" ".join(bits))
        for constraint in self.unique_constraints:
            if constraint == self.primary_key:
                continue
            if len(constraint) == 1 and self.column(constraint[0]).unique:
                continue
            parts.append(f"UNIQUE ({', '.join(constraint)})")
        return f"CREATE TABLE {self.name} ({', '.join(parts)})"


class Catalog:
    """Case-insensitive registry of table schemas and name aliases."""

    def __init__(self):
        self._tables: dict[str, TableSchema] = {}
        self._aliases: dict[str, str] = {}

    def create_table(self, schema: TableSchema) -> None:
        key = schema.name.lower()
        if key in self._tables or key in self._aliases:
            raise SchemaError(f"table {schema.name!r} already exists")
        self._tables[key] = schema

    def drop_table(self, name: str) -> TableSchema:
        key = self.resolve(name)
        schema = self._tables.pop(key)
        self._aliases = {a: t for a, t in self._aliases.items() if t != key}
        return schema

    def add_alias(self, alias: str, table: str) -> None:
        """Register ``alias`` as another name for ``table``."""
        target = self.resolve(table)
        key = alias.lower()
        if key in self._tables:
            raise SchemaError(f"alias {alias!r} collides with an existing table")
        self._aliases[key] = target

    def resolve(self, name: str) -> str:
        """Return the canonical (lowercase) table key for ``name``."""
        key = name.lower()
        key = self._aliases.get(key, key)
        if key not in self._tables:
            raise SchemaError(f"no such table: {name!r}")
        return key

    def has_table(self, name: str) -> bool:
        key = name.lower()
        return key in self._tables or key in self._aliases

    def get(self, name: str) -> TableSchema:
        return self._tables[self.resolve(name)]

    def table_names(self) -> list[str]:
        """Canonical table names, in creation order."""
        return [schema.name for schema in self._tables.values()]

    def aliases(self) -> dict[str, str]:
        """``alias -> canonical table key`` registrations (a copy)."""
        return dict(self._aliases)

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)
