"""The transactional database substrate (paper principles P1/P2).

Public surface:

* :func:`connect` / :class:`Connection` / :class:`Cursor` — the unified
  entry point over every deployment shape (see :mod:`repro.db.connection`)
* :class:`Engine` — the protocol all deployment shapes implement
* :class:`Database` — embedded multi-version SQL database
* :class:`ShardedDatabase` — hash-partitioned execution over N stores
* :class:`ReplicatedDatabase` — a primary plus log-shipping replicas
* :class:`TableSchema` / :class:`Column` / :class:`ColumnType` — schemas
* :class:`IsolationLevel` / :class:`Transaction` — transaction control
* :class:`ResultSet` / :class:`Row` — query results
* :class:`SimulatedBackend` and the latency profiles — backend cost models
* :class:`FencedError` / :class:`UnavailableError` /
  :class:`ReplicationError` — the failover-story exceptions surfaced by
  :func:`connect`'s transparent retry (see ``docs/cluster.md``)
"""

from repro.db.backend import (
    NULL_PROFILE,
    POSTGRES_PROFILE,
    PROFILES,
    VOLTDB_PROFILE,
    LatencyProfile,
    SimulatedBackend,
)
from repro.db.cdc import CdcStream, ChangeRecord
from repro.db.connection import (
    Connection,
    ConnectionPool,
    Cursor,
    Engine,
    connect,
)
from repro.db.database import Database, StatementTrace
from repro.db.replication import (
    Applier,
    ReadRouter,
    Replica,
    ReplicaSet,
    ReplicatedDatabase,
    ReplicationLog,
    Session,
    ShardedReadRouter,
    ShipRecord,
)
from repro.db.result import ResultSet, Row
from repro.db.schema import Catalog, Column, TableSchema
from repro.db.sharding import ShardedDatabase, ShardRouter
from repro.db.timetravel import ShardedTimeTravel, TimeTravel
from repro.db.txn.manager import (
    IsolationLevel,
    ReadRecord,
    Transaction,
    TransactionStatus,
)
from repro.db.types import ColumnType
from repro.errors import FencedError, ReplicationError, UnavailableError

__all__ = [
    "Applier",
    "Catalog",
    "CdcStream",
    "ChangeRecord",
    "Column",
    "ColumnType",
    "Connection",
    "ConnectionPool",
    "Cursor",
    "Database",
    "Engine",
    "FencedError",
    "IsolationLevel",
    "LatencyProfile",
    "NULL_PROFILE",
    "POSTGRES_PROFILE",
    "PROFILES",
    "ReadRecord",
    "ReadRouter",
    "Replica",
    "ReplicaSet",
    "ReplicatedDatabase",
    "ReplicationError",
    "ReplicationLog",
    "ResultSet",
    "Row",
    "Session",
    "ShardRouter",
    "ShardedDatabase",
    "ShardedReadRouter",
    "ShardedTimeTravel",
    "ShipRecord",
    "SimulatedBackend",
    "StatementTrace",
    "TableSchema",
    "TimeTravel",
    "Transaction",
    "TransactionStatus",
    "UnavailableError",
    "VOLTDB_PROFILE",
    "connect",
]
