"""The transactional database substrate (paper principles P1/P2).

Public surface:

* :class:`Database` — embedded multi-version SQL database
* :class:`TableSchema` / :class:`Column` / :class:`ColumnType` — schemas
* :class:`IsolationLevel` / :class:`Transaction` — transaction control
* :class:`ResultSet` — query results
* :class:`SimulatedBackend` and the latency profiles — backend cost models
"""

from repro.db.backend import (
    NULL_PROFILE,
    POSTGRES_PROFILE,
    PROFILES,
    VOLTDB_PROFILE,
    LatencyProfile,
    SimulatedBackend,
)
from repro.db.cdc import CdcStream, ChangeRecord
from repro.db.database import Database, StatementTrace
from repro.db.replication import (
    Applier,
    ReadRouter,
    Replica,
    ReplicaSet,
    ReplicationLog,
    Session,
    ShardedReadRouter,
    ShipRecord,
)
from repro.db.result import ResultSet
from repro.db.schema import Catalog, Column, TableSchema
from repro.db.sharding import ShardedDatabase, ShardRouter
from repro.db.timetravel import ShardedTimeTravel, TimeTravel
from repro.db.txn.manager import (
    IsolationLevel,
    ReadRecord,
    Transaction,
    TransactionStatus,
)
from repro.db.types import ColumnType

__all__ = [
    "Applier",
    "Catalog",
    "CdcStream",
    "ChangeRecord",
    "Column",
    "ColumnType",
    "Database",
    "IsolationLevel",
    "LatencyProfile",
    "NULL_PROFILE",
    "POSTGRES_PROFILE",
    "PROFILES",
    "ReadRecord",
    "ReadRouter",
    "Replica",
    "ReplicaSet",
    "ReplicationLog",
    "ResultSet",
    "Session",
    "ShardRouter",
    "ShardedDatabase",
    "ShardedReadRouter",
    "ShardedTimeTravel",
    "ShipRecord",
    "SimulatedBackend",
    "StatementTrace",
    "TableSchema",
    "TimeTravel",
    "Transaction",
    "TransactionStatus",
    "VOLTDB_PROFILE",
]
