"""Change data capture.

Every committed row change is published as a :class:`ChangeRecord` on the
database's :class:`CdcStream`, in commit order, with before- and
after-images. The paper's §3.4 observes that write provenance can
"leverage the change data capture feature provided by most databases" —
TROD's interposition layer is exactly such a CDC subscriber.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator


@dataclass(frozen=True)
class ChangeRecord:
    """One committed row change."""

    seq: int  # global CDC sequence number (total order)
    csn: int  # commit sequence number of the owning transaction
    txn_id: int
    table: str  # canonical table name
    op: str  # 'insert' | 'update' | 'delete'
    row_id: int
    values: tuple | None  # after-image (None for delete)
    old_values: tuple | None  # before-image (None for insert)


class CdcStream:
    """In-order stream of committed changes with subscriber fan-out.

    Subscribers are called synchronously at commit time (still inside the
    committing worker's turn, so they observe a consistent database).
    History is retained so late consumers can catch up via :meth:`since`.
    """

    def __init__(self, retain: int | None = None):
        self._history: list[ChangeRecord] = []
        self._subscribers: list[Callable[[ChangeRecord], None]] = []
        self._next_seq = 1
        self._retain = retain
        self._dropped = 0

    def subscribe(self, callback: Callable[[ChangeRecord], None]) -> Callable[[], None]:
        """Register ``callback``; returns an unsubscribe function."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def emit(
        self,
        csn: int,
        txn_id: int,
        table: str,
        op: str,
        row_id: int,
        values: tuple | None,
        old_values: tuple | None,
    ) -> ChangeRecord:
        record = ChangeRecord(
            seq=self._next_seq,
            csn=csn,
            txn_id=txn_id,
            table=table,
            op=op,
            row_id=row_id,
            values=values,
            old_values=old_values,
        )
        self._next_seq += 1
        self._history.append(record)
        if self._retain is not None and len(self._history) > self._retain:
            overflow = len(self._history) - self._retain
            del self._history[:overflow]
            self._dropped += overflow
        for subscriber in list(self._subscribers):
            subscriber(record)
        return record

    def since(self, seq: int = 0) -> Iterator[ChangeRecord]:
        """Records with sequence number > ``seq`` still retained.

        Retention may have evicted records after ``seq``; a catch-up
        consumer that must not miss changes should first check
        ``stream.first_seq <= seq + 1`` (or ``dropped``) and fall back to
        a full resync when the gap is real.
        """
        for record in self._history:
            if record.seq > seq:
                yield record

    @property
    def first_seq(self) -> int:
        """Sequence number of the oldest retained record.

        When the history is empty this is the *next* sequence number, so
        the truncation check ``first_seq > seq + 1`` stays correct for
        both a fresh stream and one whose whole history was evicted.
        """
        return self._history[0].seq if self._history else self._next_seq

    def history(self) -> list[ChangeRecord]:
        return list(self._history)

    @property
    def dropped(self) -> int:
        """Records evicted from history by the retention limit."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._history)
