"""Column types and value handling for the database engine.

The engine supports a small but complete set of scalar types. Values are
plain Python objects (``int``, ``float``, ``str``, ``bool``, ``None``); this
module centralizes coercion, inference, comparison, and rendering so the
rest of the engine never special-cases type logic.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeCoercionError


class ColumnType(enum.Enum):
    """Scalar column types supported by the engine."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    TIMESTAMP = "TIMESTAMP"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: SQL type-name spellings accepted by ``CREATE TABLE``.
SQL_TYPE_NAMES: dict[str, ColumnType] = {
    "INT": ColumnType.INTEGER,
    "INTEGER": ColumnType.INTEGER,
    "BIGINT": ColumnType.INTEGER,
    "SMALLINT": ColumnType.INTEGER,
    "FLOAT": ColumnType.FLOAT,
    "DOUBLE": ColumnType.FLOAT,
    "REAL": ColumnType.FLOAT,
    "DECIMAL": ColumnType.FLOAT,
    "NUMERIC": ColumnType.FLOAT,
    "TEXT": ColumnType.TEXT,
    "VARCHAR": ColumnType.TEXT,
    "CHAR": ColumnType.TEXT,
    "STRING": ColumnType.TEXT,
    "BOOL": ColumnType.BOOLEAN,
    "BOOLEAN": ColumnType.BOOLEAN,
    "TIMESTAMP": ColumnType.TIMESTAMP,
    "DATETIME": ColumnType.TIMESTAMP,
}


def type_from_sql_name(name: str) -> ColumnType:
    """Resolve a SQL type spelling (case-insensitive) to a :class:`ColumnType`."""
    try:
        return SQL_TYPE_NAMES[name.upper()]
    except KeyError:
        raise TypeCoercionError(f"unknown SQL type name: {name!r}") from None


def infer_type(value: Any) -> ColumnType:
    """Infer the narrowest :class:`ColumnType` for a Python value.

    ``bool`` is checked before ``int`` because it is an ``int`` subclass.
    ``None`` has no type; callers must handle it before inferring.
    """
    if value is None:
        raise TypeCoercionError("cannot infer a column type for NULL")
    if isinstance(value, bool):
        return ColumnType.BOOLEAN
    if isinstance(value, int):
        return ColumnType.INTEGER
    if isinstance(value, float):
        return ColumnType.FLOAT
    if isinstance(value, str):
        return ColumnType.TEXT
    raise TypeCoercionError(f"unsupported Python value type: {type(value).__name__}")


def coerce(value: Any, col_type: ColumnType) -> Any:
    """Coerce ``value`` to ``col_type``, raising :class:`TypeCoercionError`.

    ``None`` passes through (nullability is enforced by the schema, not
    here). Lossless widenings are allowed (int -> float); lossy or
    cross-kind conversions (str -> int) are rejected to keep the engine
    predictable.
    """
    if value is None:
        return None
    if col_type is ColumnType.BOOLEAN:
        if isinstance(value, bool):
            return value
        raise TypeCoercionError(f"expected BOOLEAN, got {value!r}")
    if col_type is ColumnType.INTEGER or col_type is ColumnType.TIMESTAMP:
        if isinstance(value, bool):
            raise TypeCoercionError(f"expected {col_type}, got BOOLEAN {value!r}")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeCoercionError(f"expected {col_type}, got {value!r}")
    if col_type is ColumnType.FLOAT:
        if isinstance(value, bool):
            raise TypeCoercionError(f"expected FLOAT, got BOOLEAN {value!r}")
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeCoercionError(f"expected FLOAT, got {value!r}")
    if col_type is ColumnType.TEXT:
        if isinstance(value, str):
            return value
        raise TypeCoercionError(f"expected TEXT, got {value!r}")
    raise TypeCoercionError(f"unknown column type {col_type!r}")  # pragma: no cover


_TYPE_ORDER = {bool: 0, int: 1, float: 1, str: 2}


def _sort_class(value: Any) -> int:
    """Cross-type ordering class: NULL < BOOLEAN < numbers < TEXT."""
    if value is None:
        return -1
    if isinstance(value, bool):
        return 0
    return _TYPE_ORDER[type(value)]


def compare_values(a: Any, b: Any) -> int:
    """Total-order comparison used by ORDER BY and sorted indexes.

    Returns -1, 0, or 1. NULL sorts before every non-NULL value; values of
    different kinds order by kind (bool < numeric < text) so mixed columns
    still sort deterministically.
    """
    ka, kb = _sort_class(a), _sort_class(b)
    if ka != kb:
        return -1 if ka < kb else 1
    if a is None and b is None:
        return 0
    if a == b:
        return 0
    return -1 if a < b else 1


class SortKey:
    """Adapter making :func:`compare_values` usable as a ``sorted`` key."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "SortKey") -> bool:
        return compare_values(self.value, other.value) < 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SortKey) and compare_values(self.value, other.value) == 0

    def __hash__(self) -> int:  # pragma: no cover - keys are not hashed today
        return hash(self.value)


def row_sort_key(values: tuple) -> tuple:
    """Key for sorting whole rows (tuples) with NULL-safe semantics."""
    return tuple(SortKey(v) for v in values)


def render_value(value: Any) -> str:
    """Render a value the way result tables display it (NULL as ``null``)."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def sql_literal(value: Any) -> str:
    """Render a value as a SQL literal (used by tooling that emits SQL)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)
