"""Query results."""

from __future__ import annotations

from typing import Any, Iterator

from repro.db.types import render_value
from repro.errors import ExecutionError


class Row(tuple):
    """One result row: a tuple with name and attribute access.

    ``row.balance``, ``row["balance"]``, and ``row[1]`` all work; equality
    and ordering against plain tuples are inherited, so code written
    against tuple rows keeps passing when handed Rows (the cursor API
    returns these).
    """

    def __new__(cls, values: tuple, names: dict[str, int]) -> "Row":
        obj = super().__new__(cls, values)
        obj._names = names
        return obj

    def __getattr__(self, name: str) -> Any:
        try:
            return tuple.__getitem__(self, self._names[name.lower()])
        except KeyError:
            raise AttributeError(
                f"row has no column {name!r} (columns: {list(self._names)})"
            ) from None

    def __getitem__(self, key):  # type: ignore[override]
        if isinstance(key, str):
            try:
                return tuple.__getitem__(self, self._names[key.lower()])
            except KeyError:
                raise ExecutionError(
                    f"row has no column {key!r} (columns: {list(self._names)})"
                ) from None
        return tuple.__getitem__(self, key)

    def keys(self) -> list[str]:
        return list(self._names)

    def as_dict(self) -> dict[str, Any]:
        return {name: tuple.__getitem__(self, i) for name, i in self._names.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Row {self.as_dict()!r}>"


def _name_slots(columns: list[str]) -> dict[str, int]:
    """Column name -> slot, first occurrence winning (duplicates legal)."""
    names: dict[str, int] = {}
    for i, column in enumerate(columns):
        names.setdefault(column.lower(), i)
    return names


class ResultSet:
    """Rows returned by a statement.

    SELECTs populate ``columns`` and ``rows``; DML statements leave those
    empty and report ``rowcount`` (and, for INSERT, the new ``row_ids``).

    A SELECT may instead be *streamed*: constructed with ``source`` (a
    row iterator) rather than ``rows``, it pulls rows lazily — through
    :meth:`next_row` / :meth:`take` / iteration — so a consumer holding
    the first few rows of a million-row scan never materializes the rest.
    ``rowcount`` is ``-1`` until the stream ends (DB-API's "unknown").
    Accessing :attr:`rows` (or any whole-result helper: ``scalar``,
    ``as_rows``, ``len()``...) on an untouched stream drains it into a
    list, so materializing callers behave exactly as before; doing so
    after rows were already streamed off raises, because those rows are
    gone. The stream is pinned to the statement's snapshot — see
    :meth:`prime` and docs/api.md ("Streaming & concurrency").
    """

    def __init__(
        self,
        columns: list[str] | None = None,
        rows: list[tuple] | None = None,
        rowcount: int = 0,
        kind: str = "select",
        row_ids: list[int] | None = None,
        source: Iterator[tuple] | None = None,
    ):
        self.columns = columns or []
        self.kind = kind
        self.row_ids = row_ids or []
        self._source = source if rows is None else None
        self._pending: tuple | None = None  # primed row awaiting next_row
        self._consumed = 0  # rows handed out through the streaming API
        if self._source is not None:
            self._rows: list[tuple] = []
            self.rowcount = -1 if kind == "select" else rowcount
        else:
            self._rows = rows or []
            self.rowcount = rowcount if kind != "select" else len(self._rows)

    # -- streaming --------------------------------------------------------

    @property
    def streaming(self) -> bool:
        """True while rows may still be pulled lazily from the source."""
        return self._source is not None or self._pending is not None

    def prime(self) -> None:
        """Start the pipeline: pull (and hold) the first row.

        The engine calls this while the statement's read transaction is
        still live, so every scan in the pipeline resolves its snapshot
        before the transaction is finished; from then on the stream is
        pinned — it serves that snapshot however long the consumer takes
        and whatever commits or aborts happen meanwhile.
        """
        if self._source is None or self._pending is not None or self._consumed:
            return
        try:
            self._pending = next(self._source)
        except StopIteration:
            self._finish()

    def next_row(self) -> tuple | None:
        """The next streamed row, or None when the stream is exhausted."""
        if self._pending is not None:
            row = self._pending
            self._pending = None
            self._consumed += 1
            return row
        if self._source is None:
            return None
        try:
            row = next(self._source)
        except StopIteration:
            self._finish()
            return None
        self._consumed += 1
        return row

    def take(self, n: int) -> list[tuple]:
        """Up to ``n`` rows off the stream (empty list when exhausted)."""
        out: list[tuple] = []
        while len(out) < n:
            row = self.next_row()
            if row is None:
                break
            out.append(row)
        return out

    def close(self) -> None:
        """Stop streaming; remaining rows are abandoned unscanned.

        Dropping a stream needs no other cleanup: the backing read
        transaction was already finished at prime time, so an abandoned
        stream just releases its pinned snapshot to the garbage
        collector.
        """
        self._source = None
        self._pending = None

    def _finish(self) -> None:
        self._source = None
        if self.kind == "select":
            self.rowcount = self._consumed

    @property
    def rows(self) -> list[tuple]:
        """All rows, materializing a not-yet-consumed stream on demand."""
        if self._consumed:
            # Applies whether the stream is mid-flight, exhausted, or
            # closed: rows handed out through the streaming API are gone,
            # and silently returning the empty remainder would read as
            # "no rows matched".
            raise ExecutionError(
                "result was streamed; rows already fetched cannot be "
                "re-materialized (drain via iteration, or access .rows "
                "before fetching)"
            )
        if self._source is not None or self._pending is not None:
            drained = []
            if self._pending is not None:
                drained.append(self._pending)
                self._pending = None
            drained.extend(self._source or ())
            self._source = None
            self._rows = drained
            if self.kind == "select":
                self.rowcount = len(drained)
        return self._rows

    def __iter__(self) -> Iterator[tuple]:
        if not self.streaming:
            if self._consumed:
                # A drained/closed stream: re-iterating would silently
                # read as an empty result (streams are one-shot).
                raise ExecutionError(
                    "result was streamed and is exhausted; streams are "
                    "one-shot"
                )
            return iter(self._rows)
        return self._iter_stream()

    def _iter_stream(self) -> Iterator[tuple]:
        while True:
            if not self.streaming:
                # Materialized out from under us — list(result) probes
                # __len__ as a length hint after creating the iterator.
                # No streamed row was handed out yet (``rows`` refuses
                # otherwise), so the buffer is the complete result.
                yield from self._rows
                return
            row = self.next_row()
            if row is None:
                return
            yield row

    def __len__(self) -> int:
        if self._consumed:
            # Raised as TypeError so list(result) — which probes len()
            # only as a hint and ignores TypeError — keeps streaming.
            raise TypeError("length of a streamed result is unknowable")
        return len(self.rows)

    def __bool__(self) -> bool:
        if self._consumed:
            return True  # rows already streamed off: the result had rows
        return bool(self.rows) or self.rowcount > 0

    def first(self) -> tuple | None:
        """The first row (pulling just one from a streamed result)."""
        if self.streaming and not self._consumed:
            row = self.next_row()
            self.close()
            return row
        return self.rows[0] if self.rows else None

    def one(self) -> Row:
        """The single row of a single-row result, with attribute access.

        Raises :class:`~repro.errors.ExecutionError` when the result has
        zero or several rows — the cursor-era companion to :meth:`scalar`.
        On a streamed result this pulls at most two rows, so ``one()``
        over a selective predicate stops the underlying scan as soon as a
        second match would disprove uniqueness (the EXISTS-style
        short-circuit).
        """
        if self.streaming and not self._consumed:
            got = self.take(2)
            self.close()
            if len(got) != 1:
                raise ExecutionError(
                    f"one() needs exactly one row, got "
                    f"{'0' if not got else 'several (2+)'}"
                )
            return Row(got[0], _name_slots(self.columns))
        if len(self.rows) != 1:
            raise ExecutionError(
                f"one() needs exactly one row, got {len(self.rows)}"
            )
        return Row(self.rows[0], _name_slots(self.columns))

    def as_rows(self) -> list[Row]:
        """Every row wrapped for name/attribute access."""
        names = _name_slots(self.columns)
        return [Row(row, names) for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        """All values of one output column."""
        lowered = [c.lower() for c in self.columns]
        try:
            index = lowered.index(name.lower())
        except ValueError:
            raise ExecutionError(f"no output column {name!r}") from None
        return [row[index] for row in self.rows]

    def pretty(self, max_rows: int | None = None) -> str:
        """Render as an aligned text table (used by examples and benches)."""
        shown = self.rows if max_rows is None else self.rows[:max_rows]
        cells = [[render_value(v) for v in row] for row in shown]
        headers = list(self.columns)
        widths = [len(h) for h in headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(
            " | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells
        )
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.streaming:
            return f"<ResultSet streaming x {len(self.columns)} cols>"
        if self.kind == "select":
            return f"<ResultSet {len(self._rows)} rows x {len(self.columns)} cols>"
        return f"<ResultSet {self.kind} rowcount={self.rowcount}>"
