"""Query results."""

from __future__ import annotations

from typing import Any, Iterator

from repro.db.types import render_value
from repro.errors import ExecutionError


class Row(tuple):
    """One result row: a tuple with name and attribute access.

    ``row.balance``, ``row["balance"]``, and ``row[1]`` all work; equality
    and ordering against plain tuples are inherited, so code written
    against tuple rows keeps passing when handed Rows (the cursor API
    returns these).
    """

    def __new__(cls, values: tuple, names: dict[str, int]) -> "Row":
        obj = super().__new__(cls, values)
        obj._names = names
        return obj

    def __getattr__(self, name: str) -> Any:
        try:
            return tuple.__getitem__(self, self._names[name.lower()])
        except KeyError:
            raise AttributeError(
                f"row has no column {name!r} (columns: {list(self._names)})"
            ) from None

    def __getitem__(self, key):  # type: ignore[override]
        if isinstance(key, str):
            try:
                return tuple.__getitem__(self, self._names[key.lower()])
            except KeyError:
                raise ExecutionError(
                    f"row has no column {key!r} (columns: {list(self._names)})"
                ) from None
        return tuple.__getitem__(self, key)

    def keys(self) -> list[str]:
        return list(self._names)

    def as_dict(self) -> dict[str, Any]:
        return {name: tuple.__getitem__(self, i) for name, i in self._names.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Row {self.as_dict()!r}>"


def _name_slots(columns: list[str]) -> dict[str, int]:
    """Column name -> slot, first occurrence winning (duplicates legal)."""
    names: dict[str, int] = {}
    for i, column in enumerate(columns):
        names.setdefault(column.lower(), i)
    return names


class ResultSet:
    """Rows returned by a statement.

    SELECTs populate ``columns`` and ``rows``; DML statements leave those
    empty and report ``rowcount`` (and, for INSERT, the new ``row_ids``).
    """

    def __init__(
        self,
        columns: list[str] | None = None,
        rows: list[tuple] | None = None,
        rowcount: int = 0,
        kind: str = "select",
        row_ids: list[int] | None = None,
    ):
        self.columns = columns or []
        self.rows = rows or []
        self.kind = kind
        self.rowcount = rowcount if kind != "select" else len(self.rows)
        self.row_ids = row_ids or []

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows) or self.rowcount > 0

    def first(self) -> tuple | None:
        return self.rows[0] if self.rows else None

    def one(self) -> Row:
        """The single row of a single-row result, with attribute access.

        Raises :class:`~repro.errors.ExecutionError` when the result has
        zero or several rows — the cursor-era companion to :meth:`scalar`.
        """
        if len(self.rows) != 1:
            raise ExecutionError(
                f"one() needs exactly one row, got {len(self.rows)}"
            )
        return Row(self.rows[0], _name_slots(self.columns))

    def as_rows(self) -> list[Row]:
        """Every row wrapped for name/attribute access."""
        names = _name_slots(self.columns)
        return [Row(row, names) for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        """All values of one output column."""
        lowered = [c.lower() for c in self.columns]
        try:
            index = lowered.index(name.lower())
        except ValueError:
            raise ExecutionError(f"no output column {name!r}") from None
        return [row[index] for row in self.rows]

    def pretty(self, max_rows: int | None = None) -> str:
        """Render as an aligned text table (used by examples and benches)."""
        shown = self.rows if max_rows is None else self.rows[:max_rows]
        cells = [[render_value(v) for v in row] for row in shown]
        headers = list(self.columns)
        widths = [len(h) for h in headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(
            " | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells
        )
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == "select":
            return f"<ResultSet {len(self.rows)} rows x {len(self.columns)} cols>"
        return f"<ResultSet {self.kind} rowcount={self.rowcount}>"
