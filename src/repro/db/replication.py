"""Log-shipping read replicas with session guarantees and failover.

The paper's premise — all application state flows through transactional
stores, so the commit-ordered change stream is a complete account of what
happened (§3.4 leans on database CDC for exactly this) — also dictates how
this engine scales reads: replicas are built by *shipping the committed
change stream*, never by copying loose state. The pieces:

* :class:`ReplicationLog` — a tap on a primary :class:`~repro.db.database.
  Database`: every commit (including empty ones, which still consume CSNs)
  and every DDL statement is appended as a :class:`ShipRecord`, in commit
  order. The log is the unit of acknowledgement: a commit present here is
  durable for failover purposes, whatever the replicas have applied.
* :class:`Applier` — replays ship records onto one replica database
  *transactionally*, preserving CSNs and row ids exactly. A caught-up
  replica is therefore bit-identical to the primary — including its
  version chains from the bootstrap point on, so time-travel / AS-OF
  reads work on replicas, and including its own CDC stream, so replicas
  can be chained or tapped by provenance just like primaries.
* :class:`ReplicaSet` — N replicas behind one primary with sync/async ship
  modes, per-replica lag tracking, catch-up with truncation-triggered
  resync, and promotion: fence the old primary, drain every acknowledged
  record, promote the most-caught-up replica, re-point the log.
* :class:`Session` / :class:`ReadRouter` — session guarantees as routing:
  a session carries the CSN of its last write and reads are served only by
  replicas at/after it (read-your-writes), falling back to the primary or
  forcing a catch-up when every replica is stale.

Replicas are read-only by convention, and reads against them must not
consume CSNs (that would desynchronize the shipped stream), so the router
serves SELECTs under a transaction it *aborts* — the same trick the
sharded facade uses for scatter reads.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.db.cdc import ChangeRecord
from repro.db.database import Database
from repro.db.index import SortedIndex
from repro.db.result import ResultSet
from repro.db.schema import TableSchema
from repro.db.sql.executor import evaluate_as_of
from repro.db.sql.nodes import (
    CreateIndexStmt,
    CreateTableStmt,
    DropIndexStmt,
    DropTableStmt,
    SelectStmt,
)
from repro.db.txn.manager import IsolationLevel, Transaction, TransactionStatus
from repro.errors import ReplicationError, UnavailableError
from repro.faults import fault_point
from repro.runtime.scheduler import CheckpointKind, maybe_checkpoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.sharding import ShardedDatabase


@dataclass(frozen=True)
class ShipRecord:
    """One replicated event: a commit's change set, or one DDL statement."""

    seq: int  # position in the replication log (contiguous)
    kind: str  # 'commit' | 'ddl'
    csn: int  # primary CSN after this record
    txn_id: int  # primary transaction id (0 for DDL)
    changes: tuple[ChangeRecord, ...] = ()  # commit payload (may be empty)
    ddl: tuple | None = None  # ('create_table', schema) | ('drop_table', name) | ...


class ReplicationLog:
    """Commit-ordered ship stream tapped from a primary database.

    Attaches as an observer: ``txn_committed`` yields commit records
    (empty commits included — they consume CSNs, and replicas must track
    the primary's CSN clock exactly), and the DDL hooks yield schema
    records so replicas follow catalog changes in stream order. With
    ``retain`` set, old records are evicted; a replica whose position
    predates the retained window must resync from a snapshot.
    """

    def __init__(self, primary: Database, retain: int | None = None):
        self.primary = primary
        self._records: list[ShipRecord] = []
        self._next_seq = 1
        self._retain = retain
        self._dropped = 0
        self._subscribers: list[Callable[[ShipRecord], None]] = []
        #: Primary CSN when the tap attached; records describe only
        #: history after this point (bootstrap snapshots cover the rest).
        self.base_csn = primary.last_csn
        primary.add_observer(self)

    def detach(self) -> None:
        self.primary.remove_observer(self)

    def subscribe(self, callback: Callable[[ShipRecord], None]) -> Callable[[], None]:
        """Register ``callback`` for new records; returns an unsubscribe."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    # -- observer hooks (called by the primary) ---------------------------

    def txn_committed(
        self, txn: Any, csn: int, cdc_records: Sequence[ChangeRecord]
    ) -> None:
        self._append("commit", csn, txn.txn_id, changes=tuple(cdc_records))

    def table_created(self, schema: TableSchema) -> None:
        self._append("ddl", self.primary.last_csn, 0, ddl=("create_table", schema))

    def table_dropped(self, name: str) -> None:
        self._append("ddl", self.primary.last_csn, 0, ddl=("drop_table", name))

    def index_created(
        self, name: str, table: str, columns: tuple, unique: bool, sorted_index: bool
    ) -> None:
        self._append(
            "ddl",
            self.primary.last_csn,
            0,
            ddl=("create_index", name, table, columns, unique, sorted_index),
        )

    def index_dropped(self, name: str, table: str) -> None:
        self._append("ddl", self.primary.last_csn, 0, ddl=("drop_index", name, table))

    def alias_added(self, alias: str, table: str) -> None:
        self._append("ddl", self.primary.last_csn, 0, ddl=("alias", alias, table))

    # -- record plumbing --------------------------------------------------

    def _append(
        self,
        kind: str,
        csn: int,
        txn_id: int,
        changes: tuple[ChangeRecord, ...] = (),
        ddl: tuple | None = None,
    ) -> None:
        fault_point(
            "repl.ship", primary=self.primary.name, seq=self._next_seq, kind=kind
        )
        record = ShipRecord(
            seq=self._next_seq,
            kind=kind,
            csn=csn,
            txn_id=txn_id,
            changes=changes,
            ddl=ddl,
        )
        self._next_seq += 1
        self._records.append(record)
        if self._retain is not None and len(self._records) > self._retain:
            overflow = len(self._records) - self._retain
            del self._records[:overflow]
            self._dropped += overflow
        for subscriber in list(self._subscribers):
            subscriber(record)

    def since(self, seq: int) -> list[ShipRecord]:
        """Retained records with sequence number > ``seq``, in order."""
        if not self._records:
            return []
        start = max(0, seq + 1 - self._records[0].seq)
        return self._records[start:]

    @property
    def first_seq(self) -> int:
        """Oldest retained sequence number (next seq when empty)."""
        return self._records[0].seq if self._records else self._next_seq

    @property
    def last_seq(self) -> int:
        return self._next_seq - 1

    @property
    def dropped(self) -> int:
        """Records evicted by the retention limit."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._records)


class Applier:
    """Replays ship records onto one replica database, transactionally.

    Commit records replay through a real transaction (so the replica's
    WAL, CDC stream, indexes, and observers all behave exactly as on the
    primary) and must land on the very next CSN — the replica's commit
    counter then assigns ``record.csn`` by construction, and the
    commit/CSN indexes are re-pointed at the *primary's* transaction id so
    provenance lookups agree across the fleet. Any CSN mismatch means the
    stream has a gap (or the replica was written to directly) and raises
    :class:`ReplicationError` rather than applying a torn history.
    """

    def __init__(self, replica: Database):
        self.replica = replica
        self.applied_seq = 0

    def apply(self, record: ShipRecord) -> None:
        fault_point("repl.apply", replica=self.replica.name, seq=record.seq)
        if record.kind == "commit":
            self._apply_commit(record)
        elif record.kind == "ddl":
            self._apply_ddl(record)
        else:  # pragma: no cover - constructed only by ReplicationLog
            raise ReplicationError(f"unknown ship record kind {record.kind!r}")
        self.applied_seq = record.seq

    def _apply_commit(self, record: ShipRecord) -> None:
        expected = self.replica.last_csn + 1
        if record.csn != expected:
            direction = "behind" if record.csn > expected else "ahead of"
            raise ReplicationError(
                f"replica {self.replica.name!r} at csn {self.replica.last_csn} "
                f"is {direction} commit record csn {record.csn}; the stream "
                "has a gap (resync required)"
            )
        manager = self.replica.txn_manager
        if not record.changes:
            # Empty commit (a read-only transaction on the primary): it
            # only advances the CSN clock. Register the bookkeeping
            # directly rather than spinning up a whole transaction —
            # catch-up over a read-mostly stream stays O(1) per record.
            manager.last_csn = record.csn
            manager.commit_index[record.txn_id] = record.csn
            manager.csn_index[record.csn] = record.txn_id
            return
        # Pin the transaction counter so the apply transaction carries
        # the PRIMARY's txn id natively: commit_index/csn_index then
        # agree across the fleet with no re-keying (re-keying collides
        # when a local counter value matches an earlier primary id).
        manager._next_txn_id = record.txn_id
        txn = self.replica.begin(info={"replication_apply": True})
        assert txn.txn_id == record.txn_id
        try:
            for change in record.changes:
                if change.op == "insert":
                    txn.insert_with_id(change.table, change.values, change.row_id)
                elif change.op == "update":
                    txn.update(change.table, change.row_id, change.values)
                elif change.op == "delete":
                    txn.delete(change.table, change.row_id)
                else:  # pragma: no cover - CDC emits only these three
                    raise ReplicationError(f"unknown change op {change.op!r}")
            txn.commit()
        except Exception:
            if txn.commit_csn is None:
                txn.abort()
            raise

    def _apply_ddl(self, record: ShipRecord) -> None:
        assert record.ddl is not None
        op, *args = record.ddl
        db = self.replica
        if op == "create_table":
            (schema,) = args
            db.create_table(schema)
        elif op == "drop_table":
            (name,) = args
            db.drop_table(name, if_exists=True)
        elif op == "create_index":
            name, table, columns, unique, sorted_index = args
            db.create_index(
                name, table, list(columns), unique=unique, sorted_index=sorted_index
            )
        elif op == "drop_index":
            name, table = args
            db.drop_index(name, table, if_exists=True)
        elif op == "alias":
            alias, table = args
            db.add_table_alias(alias, table)
        else:  # pragma: no cover - constructed only by ReplicationLog
            raise ReplicationError(f"unknown ddl op {op!r}")


class Replica:
    """One replica database and its apply position."""

    __slots__ = ("name", "database", "applier")

    def __init__(self, name: str, database: Database, applier: Applier):
        self.name = name
        self.database = database
        self.applier = applier

    @property
    def csn(self) -> int:
        return self.database.last_csn

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Replica {self.name!r} csn={self.csn}>"


class ReplicaSet:
    """N log-shipping replicas behind one primary.

    ``mode='sync'`` applies every record to every replica inside the
    primary's commit (zero lag, commit pays the apply cost); ``'async'``
    accumulates records in the :class:`ReplicationLog` and applies them on
    :meth:`catch_up` (bounded staleness, cheap commits). Replicas
    bootstrapped mid-stream start from a snapshot of the primary's latest
    state, so their time-travel horizon is the bootstrap CSN.

    ``ack_quorum=N`` (async mode) is the middle ground: every commit is
    applied synchronously to the first N healthy replicas before the
    primary's ``execute``/``commit`` returns, and the rest catch up in the
    background — durability (quorum size) and read fan-out (replica
    count) scale independently. A commit that cannot reach N replicas
    raises :class:`ReplicationError` *after* the primary applied it: the
    write is durable locally and in the ship log, but the caller learns
    the quorum was not met.

    Crashed replicas (``database.crashed``, the cluster failure model)
    are skipped by shipping, routing, and quorum counting; they rejoin
    via :meth:`catch_up` (or a retention-triggered resync) once revived.
    """

    def __init__(
        self,
        primary: Database,
        n_replicas: int = 0,
        mode: str = "async",
        log_retain: int | None = None,
        ack_quorum: int = 0,
    ):
        if mode not in ("sync", "async"):
            raise ReplicationError(f"unknown ship mode {mode!r}")
        if ack_quorum < 0:
            raise ReplicationError(f"ack_quorum must be >= 0, got {ack_quorum}")
        if ack_quorum and mode == "sync":
            raise ReplicationError(
                "ack_quorum is redundant with mode='sync' (every replica "
                "already applies inside the commit); use mode='async'"
            )
        self.primary = primary
        self.mode = mode
        self.ack_quorum = ack_quorum
        self._log_retain = log_retain
        self.log = ReplicationLog(primary, retain=log_retain)
        self.replicas: list[Replica] = []
        #: Cascading (replica-of-replica) sets, as (upstream, downstream)
        #: pairs — see :meth:`chain`.
        self.chains: list[tuple[Replica, "ReplicaSet"]] = []
        self._rr = 0  # round-robin cursor
        self._made = 0  # names stay unique across promote/resync
        self._promoting = False
        #: Databases removed from active duty (the demoted primary after a
        #: failover). :meth:`reprovision` rejoins them as fresh replicas.
        self.retired: list[Database] = []
        #: True while the primary has fewer than ``ack_quorum`` healthy
        #: replicas and has been degraded to read-only.
        self.degraded = False
        self.stats = {
            "shipped_records": 0,
            "resyncs": 0,
            "promotions": 0,
            "quorum_commits": 0,
            "quorum_misses": 0,
            "degradations": 0,
            "restorations": 0,
            "reprovisions": 0,
        }
        for _ in range(n_replicas):
            self.add_replica()
        self._unsub: Callable[[], None] | None = None
        self._subscribe_ship()

    def _subscribe_ship(self) -> None:
        if self.mode == "sync":
            self._unsub = self.log.subscribe(self._on_record)
        elif self.ack_quorum > 0:
            self._unsub = self.log.subscribe(self._on_record_quorum)

    # -- membership -------------------------------------------------------

    def add_replica(self, name: str | None = None) -> Replica:
        """Bootstrap a new replica from the primary's latest snapshot."""
        self._made += 1
        name = name or f"{self.primary.name}-r{self._made}"
        database = self._bootstrap(name)
        replica = Replica(name, database, Applier(database))
        # The snapshot already reflects everything the log has recorded.
        replica.applier.applied_seq = self.log.last_seq
        self.replicas.append(replica)
        return replica

    def replica(self, name: str) -> Replica:
        for replica in self.replicas:
            if replica.name == name:
                return replica
        raise ReplicationError(
            f"no replica {name!r} (have {[r.name for r in self.replicas]})"
        )

    def __len__(self) -> int:
        return len(self.replicas)

    def _bootstrap(self, name: str) -> Database:
        """A fresh database holding the primary's schema + latest rows.

        Row ids are preserved (provenance and shipped updates address rows
        by id); the snapshot loads at CSN 0 and the CSN clock is advanced
        to the primary's, so every *later* commit lands on its exact CSN.
        History before the bootstrap point is not on the replica — the
        time-travel horizon records that, like a base backup.
        """
        primary = self.primary
        base_csn = primary.last_csn
        database = Database(name=name)
        for table in primary.catalog.table_names():
            schema = primary.catalog.get(table)
            database.create_table(schema)
            replica_indexes = database.index_set(table)
            for index_name, index in primary.index_set(table).indexes.items():
                if index_name in replica_indexes.indexes:
                    continue  # constraint-backed uq_* index, auto-created
                if isinstance(index, SortedIndex):
                    database.create_index(
                        index.name, schema.name, list(index.columns),
                        sorted_index=True,
                    )
                else:
                    database.create_index(
                        index.name, schema.name, list(index.columns),
                        unique=index.unique,
                    )
            database.bulk_load(
                schema.name, list(primary.store(table).scan(None))
            )
        for alias, target in primary.catalog.aliases().items():
            database.add_table_alias(alias, target)
        manager = database.txn_manager
        manager.last_csn = base_csn
        # Carry the commit bookkeeping over so provenance lookups
        # (txn id <-> csn) answer identically on any node, and the
        # replica's txn counter continues from the primary's.
        manager.commit_index = dict(primary.txn_manager.commit_index)
        manager.csn_index = dict(primary.txn_manager.csn_index)
        manager._next_txn_id = primary.txn_manager._next_txn_id
        if base_csn:
            database.history_horizon = base_csn
        # Replicas only change through the shipped stream; SQL-surface
        # writes are rejected and autocommitted reads abort (a committed
        # read would consume a CSN and desynchronize the clock).
        database.read_only = True
        return database

    # -- lag and routing --------------------------------------------------

    def lag(self, replica: Replica | str) -> int:
        """How many CSNs ``replica`` trails the primary by."""
        if isinstance(replica, str):
            replica = self.replica(replica)
        return self.primary.last_csn - replica.csn

    def max_lag(self) -> int:
        return max((self.lag(r) for r in self.replicas), default=0)

    def healthy_replicas(self) -> list[Replica]:
        """Replicas whose database answers (not crashed)."""
        return [r for r in self.replicas if not r.database.crashed]

    def least_lagged(self) -> Replica:
        healthy = self.healthy_replicas()
        if not healthy:
            raise ReplicationError(
                "replica set is empty"
                if not self.replicas
                else "every replica is down"
            )
        return max(healthy, key=lambda r: r.csn)

    def covering_replica(self, csn: int) -> Replica | None:
        """A replica whose shipped history covers commit ``csn``, or None.

        Coverage means the replica has applied the commit (its CSN is
        at/after ``csn``) *and* its bootstrap horizon predates it — the
        qualification every AS-OF read uses, on routers, the replicated
        engine, and sharded time travel alike.
        """
        for replica in self.healthy_replicas():
            if (
                replica.csn >= csn
                and replica.database.history_horizon <= csn
            ):
                return replica
        return None

    def pick(self, policy: str = "round_robin", min_csn: int = 0) -> Replica | None:
        """A healthy replica whose CSN is at/after ``min_csn``, or None.

        ``min_csn`` is the session-guarantee floor: a session that wrote
        at CSN *c* may only read from replicas that have applied *c*.
        """
        eligible = [r for r in self.healthy_replicas() if r.csn >= min_csn]
        if not eligible:
            return None
        if policy == "least_lagged":
            return max(eligible, key=lambda r: r.csn)
        if policy != "round_robin":
            raise ReplicationError(f"unknown routing policy {policy!r}")
        self._rr += 1
        return eligible[self._rr % len(eligible)]

    # -- shipping ---------------------------------------------------------

    def _on_record(self, record: ShipRecord) -> None:
        """Sync mode: apply inside the primary's commit, on every replica.

        Crashed replicas are skipped — a dead node must not brick the
        primary's commits; it drains the backlog via :meth:`catch_up`
        when revived.
        """
        for replica in self.replicas:
            if replica.database.crashed:
                continue
            replica.applier.apply(record)
            self.stats["shipped_records"] += 1

    def _on_record_quorum(self, record: ShipRecord) -> None:
        """Quorum mode: apply inside the commit until N replicas acked.

        Replicas outside the quorum stay async. A replica that lagged out
        of the quorum earlier (it was crashed or another replica was
        ahead of it in the list) first drains its backlog so every apply
        stays gap-free. Raises when fewer than ``ack_quorum`` replicas
        could acknowledge — the commit is durable on the primary and in
        the ship log, but the caller learns durability fell short.

        Empty commits (read-only transactions, no-op DML) carry no data,
        so they never block on the quorum: a primary that lost its
        quorum must stay readable. Replicas pick the clock tick up from
        the log with the next real commit or ``catch_up``.
        """
        if record.kind == "commit" and not record.changes:
            return
        acked = 0
        for replica in self.replicas:
            if acked >= self.ack_quorum:
                break
            if replica.database.crashed:
                continue
            try:
                for pending in self.log.since(replica.applier.applied_seq):
                    if pending.seq > record.seq:
                        break
                    replica.applier.apply(pending)
                    self.stats["shipped_records"] += 1
            except (ReplicationError, UnavailableError):
                continue  # cannot ack (gap or died mid-apply); try the next
            acked += 1
        if acked < self.ack_quorum:
            self.stats["quorum_misses"] += 1
            self._degrade(acked)
            raise ReplicationError(
                f"write quorum not met: {acked} of {self.ack_quorum} required "
                f"replicas acknowledged csn {record.csn} (primary applied it; "
                "retry once replicas recover, or fail over)"
            )
        self.stats["quorum_commits"] += 1

    def _degrade(self, acked: int) -> None:
        """Quorum lost: degrade the primary to read-only.

        The commit that detected the miss is already durable locally and
        in the ship log (its ReplicationError says so); what degradation
        prevents is *piling up* further writes that no quorum has seen.
        Reads keep flowing — a quorum-less primary must stay readable.
        :meth:`_maybe_restore` lifts the fence once enough replicas are
        healthy and caught up again.
        """
        if self.degraded:
            return
        self.degraded = True
        self.primary.read_only = True
        self.primary.read_only_reason = (
            f"write quorum lost ({acked} of {self.ack_quorum} replicas "
            "acknowledging); writes resume when the quorum is restored"
        )
        self.stats["degradations"] += 1

    def _maybe_restore(self) -> None:
        """Lift a quorum degradation once enough replicas are healthy."""
        if not self.degraded:
            return
        if len(self.healthy_replicas()) < self.ack_quorum:
            return
        self.degraded = False
        self.primary.read_only = False
        self.primary.read_only_reason = None
        self.stats["restorations"] += 1

    def catch_up(
        self, replica: Replica | str | None = None, limit: int | None = None
    ) -> int:
        """Apply pending log records; returns the number applied.

        A replica whose position predates the log's retained window has
        lost records to retention and is rebuilt from a fresh snapshot
        (counted in ``stats['resyncs']``, not in the return value).
        ``limit`` bounds records applied *per replica* (lag simulation and
        incremental catch-up both use it).
        """
        if isinstance(replica, str):
            replica = self.replica(replica)
        targets = [replica] if replica is not None else list(self.replicas)
        applied = 0
        for target in targets:
            if target.database.crashed:
                continue  # dead node: it drains after revival
            if target.applier.applied_seq + 1 < self.log.first_seq:
                self.resync(target)
                continue
            budget = limit
            for record in self.log.since(target.applier.applied_seq):
                if budget is not None:
                    if budget <= 0:
                        break
                    budget -= 1
                target.applier.apply(record)
                applied += 1
        self.stats["shipped_records"] += applied
        if replica is None:
            # Cascade: downstream sets drain from their (just-advanced)
            # upstream replicas.
            for _upstream, downstream in self.chains:
                applied += downstream.catch_up(limit=limit)
        self._maybe_restore()
        return applied

    def ship_loop(
        self,
        scheduler: Any = None,
        batch: int = 32,
        max_batches: int | None = None,
    ) -> int:
        """Drain the replication log in batches, yielding between batches.

        The background catch-up shape: run this as a cooperative-scheduler
        task and it applies at most ``batch`` records per replica, hands
        the baton back at a SCAN_BATCH checkpoint, and repeats until the
        log is drained (or ``max_batches`` is hit) — so foreground readers
        interleave with replica catch-up instead of waiting behind the
        whole backlog. Records appended by foreground commits *during*
        the loop are picked up by later batches. Returns the total number
        of records applied.

        ``scheduler`` may name the driving
        :class:`~repro.runtime.scheduler.CooperativeScheduler` explicitly;
        by default the ambient worker's scheduler is used (and the yield
        is a no-op on unscheduled threads, so the loop doubles as a plain
        bounded-batch drain).
        """
        if batch < 1:
            raise ReplicationError(f"ship batch must be >= 1, got {batch}")
        applied = 0
        batches = 0
        while True:
            got = self.catch_up(limit=batch)
            applied += got
            if got == 0:
                return applied
            batches += 1
            if max_batches is not None and batches >= max_batches:
                return applied
            if scheduler is not None:
                scheduler.checkpoint(CheckpointKind.SCAN_BATCH, "ship_loop")
            else:
                maybe_checkpoint(CheckpointKind.SCAN_BATCH, "ship_loop")

    def resync(self, replica: Replica | str) -> None:
        """Rebuild a replica from a fresh primary snapshot (in place).

        The :class:`Replica` wrapper keeps its identity so routers holding
        references keep working; only the database underneath is new.
        Downstream chains fed from this replica are rebased onto the new
        database (their replicas resync from it).
        """
        if isinstance(replica, str):
            replica = self.replica(replica)
        replica.database = self._bootstrap(replica.name)
        replica.applier = Applier(replica.database)
        replica.applier.applied_seq = self.log.last_seq
        self.stats["resyncs"] += 1
        for upstream, downstream in self.chains:
            if upstream is replica:
                downstream.rebase(replica.database)

    # -- cascading chains -------------------------------------------------

    def chain(
        self,
        upstream: Replica | str,
        n_replicas: int = 1,
        mode: str = "async",
        log_retain: int | None = None,
    ) -> "ReplicaSet":
        """Cascading replication: a downstream set fed from one replica.

        The upstream replica applies shipped commits through real
        transactions with the primary's CSNs and txn ids, so its own
        observer stream is identical to the primary's — a second
        :class:`ReplicaSet` tapped on it replicates the same history one
        hop removed. Fan-out then scales by adding chain tiers without
        widening the primary's ship (or quorum) set. :meth:`catch_up`
        cascades into chains after draining the direct replicas; if the
        upstream is ever resynced, the downstream set rebases onto its
        replacement database automatically.
        """
        if isinstance(upstream, str):
            upstream = self.replica(upstream)
        if upstream not in self.replicas:
            raise ReplicationError(
                f"chain upstream {upstream.name!r} is not in this replica set"
            )
        downstream = ReplicaSet(
            upstream.database,
            n_replicas=n_replicas,
            mode=mode,
            log_retain=log_retain,
        )
        self.chains.append((upstream, downstream))
        return downstream

    def rebase(self, primary: Database) -> None:
        """Re-point this set at a replacement primary database.

        Used when a cascading upstream was resynced or promoted away: the
        old tap is detached and every replica resyncs from the new
        database (their shipped positions are meaningless against a fresh
        log).
        """
        if self._unsub is not None:
            self._unsub()
            self._unsub = None
        self.log.detach()
        self.primary = primary
        self.log = ReplicationLog(primary, retain=self._log_retain)
        for replica in self.replicas:
            self.resync(replica)
        self._subscribe_ship()

    # -- failover ---------------------------------------------------------

    def promote(self, target: Replica | str | None = None) -> Database:
        """Fail over: fence the primary, promote a replica, re-point.

        Every record in the :class:`ReplicationLog` is *acknowledged* — it
        survives the primary — so promotion first drains the log into the
        replicas, then promotes ``target`` (default: the most caught-up
        one) and re-points the remaining replicas at a fresh log on the
        new primary. All drained replicas sit at the same CSN at that
        moment, so the fresh log needs no history. A replica that cannot
        drain (its position fell out of a retention-bounded log) — or is
        itself crashed — is resynced (re-provisioned) from the *new*
        primary. The old primary stays fenced: it accepts no further
        transactions or commits.

        Only one promotion may run at a time: a second call while one is
        in flight (a heartbeat detector firing during a manual failover,
        say) raises :class:`ReplicationError` immediately and leaves the
        in-flight promotion untouched — no torn topology.
        """
        if self._promoting:
            raise ReplicationError(
                "promotion already in progress on this replica set; "
                "the topology will settle when it finishes"
            )
        if not self.replicas:
            raise ReplicationError("cannot promote: replica set is empty")
        self._promoting = True
        try:
            return self._promote_locked(target)
        finally:
            self._promoting = False

    def _promote_locked(self, target: Replica | str | None) -> Database:
        # Resolve and sanity-check the target BEFORE fencing: a failed
        # promotion must not leave the cluster with a fenced primary and
        # no replacement.
        if isinstance(target, str):
            target = self.replica(target)
        if target is None:
            target = self.least_lagged()
        if target.database.crashed:
            raise ReplicationError(
                f"replica {target.name!r} is down; promote a healthy replica"
            )
        if target.applier.applied_seq + 1 < self.log.first_seq:
            raise ReplicationError(
                f"replica {target.name!r} cannot drain the log (its position "
                f"{target.applier.applied_seq} predates the retained window, "
                f"first {self.log.first_seq}); promote a fresher replica"
            )
        self.primary.fenced = True
        if self._unsub is not None:
            self._unsub()
            self._unsub = None
        try:
            self._drain(target)
        except Exception:
            # Unexpected apply failure: roll the fence back so the old
            # primary keeps serving rather than bricking the cluster.
            self.primary.fenced = False
            self._subscribe_ship()
            raise
        laggards: list[Replica] = []
        for replica in self.replicas:
            if replica is target:
                continue
            if replica.database.crashed:
                laggards.append(replica)  # re-provision from the new primary
                continue
            try:
                self._drain(replica)
            except (ReplicationError, UnavailableError):
                laggards.append(replica)
        self.log.detach()
        old_primary = self.primary
        self.primary = target.database
        self.primary.read_only = False  # promoted: it now takes writes
        self.primary.read_only_reason = None
        # The new primary starts with a full healthy replica set view; any
        # quorum degradation belonged to the old topology.
        self.degraded = False
        #: The demoted primary is retired, not forgotten — once revived it
        #: rejoins as a fresh replica via :meth:`reprovision`.
        self.retired.append(old_primary)
        self.replicas = [r for r in self.replicas if r is not target]
        self.log = ReplicationLog(self.primary, retain=self._log_retain)
        for replica in self.replicas:
            if replica not in laggards:
                replica.applier.applied_seq = 0  # fresh log, drained position
        for replica in laggards:
            self.resync(replica)
        self._subscribe_ship()
        self.stats["promotions"] += 1
        return self.primary

    def reprovision(self) -> int:
        """Rejoin retired nodes (demoted primaries) as fresh replicas.

        A retired database that is no longer crashed is replaced by a
        brand-new replica bootstrapped from the current primary — its old
        state may have diverged (writes the failover never shipped), so
        rejoining is always a fresh snapshot, never a rewind. Crashed
        nodes stay retired until revived. Returns the number of nodes
        re-provisioned; restores a quorum degradation if the rejoins
        completed it.
        """
        rejoined = 0
        still_retired: list[Database] = []
        for node in self.retired:
            if node.crashed:
                still_retired.append(node)
                continue
            self.add_replica(name=f"{node.name}-rejoin{self._made + 1}")
            self.stats["reprovisions"] += 1
            rejoined += 1
        self.retired = still_retired
        if rejoined:
            self._maybe_restore()
        return rejoined

    def _drain(self, replica: Replica) -> None:
        """Apply every retained record to ``replica`` (no truncation gap)."""
        if replica.applier.applied_seq + 1 < self.log.first_seq:
            raise ReplicationError(
                f"replica {replica.name!r} at seq {replica.applier.applied_seq} "
                f"predates the log's retained window (first {self.log.first_seq})"
            )
        for record in self.log.since(replica.applier.applied_seq):
            replica.applier.apply(record)
            self.stats["shipped_records"] += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ReplicaSet primary={self.primary.name!r} mode={self.mode} "
            f"replicas={[r.name for r in self.replicas]} "
            f"max_lag={self.max_lag()}>"
        )


class Session:
    """Causal token for session guarantees (read-your-writes).

    Carries the CSN of the session's last acknowledged write — local CSN
    against a single primary, global CSN against a sharded cluster — and
    the routers only serve its reads from replicas at/after that point.
    """

    def __init__(self, name: str = "session"):
        self.name = name
        self.last_write_csn = 0
        self.last_global_csn = 0

    def note_write(self, csn: int) -> None:
        self.last_write_csn = max(self.last_write_csn, csn)

    def note_global_write(self, global_csn: int) -> None:
        self.last_global_csn = max(self.last_global_csn, global_csn)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Session {self.name!r} csn={self.last_write_csn} "
            f"gcsn={self.last_global_csn}>"
        )


def _read_on(
    database: Database, sql: str, params: Sequence[Any], stream: bool = False
) -> ResultSet:
    """Run a SELECT without consuming a CSN (replica reads must not).

    Autocommitted reads advance the commit clock; on a replica that would
    desynchronize the shipped stream. Reads therefore run under a
    transaction that is aborted afterwards — aborts burn no CSN. With
    ``stream=True`` the result streams: the pipeline is pinned to its
    snapshot before ``execute`` returns, so the abort below is safe.
    """
    txn = database.begin()
    try:
        return database.execute(sql, params, txn=txn, stream=stream)
    finally:
        txn.abort()


class ReadRouter:
    """Replica-aware statement routing for one primary + its replica set.

    SELECTs go to a replica chosen by ``policy`` among those satisfying
    the session's causal floor; writes (and DDL) go to the primary and
    advance the session token. When no replica satisfies the floor,
    ``on_stale='primary'`` falls back to the primary and
    ``on_stale='wait'`` forces a catch-up first (simulating "wait for
    the replica", then reads from it).
    """

    def __init__(
        self,
        replica_set: ReplicaSet,
        policy: str = "round_robin",
        on_stale: str = "primary",
    ):
        if on_stale not in ("primary", "wait"):
            raise ReplicationError(f"unknown on_stale mode {on_stale!r}")
        self.replica_set = replica_set
        self.policy = policy
        self.on_stale = on_stale
        self.stats = {
            "replica_reads": 0,
            "primary_reads": 0,
            "stale_fallbacks": 0,
            "catch_up_waits": 0,
            "writes": 0,
        }

    def execute(
        self, sql: str, params: Sequence[Any] = (), session: Session | None = None
    ) -> ResultSet:
        rs = self.replica_set
        stmt = rs.primary._parse(sql)
        if not isinstance(stmt, SelectStmt):
            result = rs.primary.execute(sql, params)
            if result.kind in ("insert", "update", "delete"):
                if session is not None:
                    session.note_write(rs.primary.last_csn)
                self.stats["writes"] += 1
            elif result.kind == "ddl":
                # DDL ship records consume no CSN, so no session floor
                # can gate their visibility; synchronize the replicas
                # now so every later read sees the new catalog.
                rs.catch_up()
            return result
        if stmt.as_of is not None:
            # Historical read: only a replica whose shipped history
            # covers the CSN answers identically; session floors don't
            # apply.
            replica = rs.covering_replica(evaluate_as_of(stmt, params))
            if replica is not None:
                self.stats["replica_reads"] += 1
                return replica.database.execute(sql, params)
            self.stats["primary_reads"] += 1
            return rs.primary.execute(sql, params)
        floor = session.last_write_csn if session is not None else 0
        replica = rs.pick(self.policy, min_csn=floor)
        if replica is None and rs.replicas and self.on_stale == "wait":
            rs.catch_up()
            self.stats["catch_up_waits"] += 1
            replica = rs.pick(self.policy, min_csn=floor)
        if replica is None:
            key = "stale_fallbacks" if rs.replicas else "primary_reads"
            self.stats[key] += 1
            return _read_on(rs.primary, sql, params)
        self.stats["replica_reads"] += 1
        return _read_on(replica.database, sql, params)

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        return self.execute(sql, params)

    def rows_as_of(self, table: str, csn: int) -> list[tuple[int, tuple]]:
        """An AS-OF read served by any replica whose history covers it."""
        replica = self.replica_set.covering_replica(csn)
        if replica is not None:
            self.stats["replica_reads"] += 1
            return replica.database.time_travel.rows_as_of(table, csn)
        self.stats["primary_reads"] += 1
        return self.replica_set.primary.time_travel.rows_as_of(table, csn)


class ReplicatedDatabase:
    """A primary plus its log-shipping replicas behind the one-database API.

    The replica-routed cluster as a first-class engine: it speaks the same
    ``execute`` / ``begin`` surface as :class:`~repro.db.database.Database`
    and :class:`~repro.db.sharding.ShardedDatabase`, so
    :func:`repro.connect` (and anything written against the
    :class:`~repro.db.connection.Engine` protocol) runs over it unchanged.
    Writes, DDL, and explicit transactions execute on the primary;
    :meth:`execute_read` serves SELECTs from replicas subject to a
    session-guarantee CSN floor, falling back to the primary (or forcing a
    catch-up) when every replica is stale. ``AS OF`` reads go to any
    replica whose shipped history covers the target CSN.
    """

    def __init__(
        self,
        primary: Database | None = None,
        n_replicas: int = 1,
        mode: str = "async",
        log_retain: int | None = None,
        replica_set: ReplicaSet | None = None,
        policy: str = "round_robin",
        name: str = "replicated",
        ack_quorum: int = 0,
    ):
        if replica_set is not None:
            self.replica_set = replica_set
        else:
            self.replica_set = ReplicaSet(
                primary if primary is not None else Database(name=name),
                n_replicas=n_replicas,
                mode=mode,
                log_retain=log_retain,
                ack_quorum=ack_quorum,
            )
        self.policy = policy
        self.stats = {
            "replica_reads": 0,
            "primary_reads": 0,
            "stale_fallbacks": 0,
            "catch_up_waits": 0,
        }

    # -- plumbing ---------------------------------------------------------

    @property
    def primary(self) -> Database:
        return self.replica_set.primary

    @property
    def name(self) -> str:
        return self.primary.name

    @property
    def catalog(self):
        return self.primary.catalog

    @property
    def last_csn(self) -> int:
        return self.primary.last_csn

    @property
    def last_commit_csn(self) -> int:
        """The engine-neutral commit position (the primary's local CSN)."""
        return self.primary.last_csn

    @property
    def time_travel(self):
        return self.primary.time_travel

    def _parse(self, sql: str):
        return self.primary._parse(sql)

    # -- the Engine surface -----------------------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        txn: Transaction | None = None,
    ) -> ResultSet:
        """Authoritative execution on the primary.

        DDL is immediately shipped to the replicas: schema records consume
        no CSN, so no session floor could otherwise gate their visibility.
        Use :meth:`execute_read` for replica-served SELECTs.
        """
        result = self.primary.execute(sql, params, txn=txn)
        if result.kind == "ddl":
            self.replica_set.catch_up()
        return result

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        return self.execute(sql, params)

    def begin(
        self,
        isolation: IsolationLevel = IsolationLevel.SERIALIZABLE,
        info: dict[str, Any] | None = None,
    ) -> Transaction:
        return self.primary.begin(isolation=isolation, info=info)

    def execute_read(
        self,
        sql: str,
        params: Sequence[Any] = (),
        floor: int = 0,
        on_stale: str = "primary",
        prefer_replica: bool = True,
        stream: bool = False,
    ) -> ResultSet:
        """A SELECT served by a replica at/after ``floor``, CSN-free.

        ``floor`` is the session-guarantee minimum (the CSN of the
        caller's last acknowledged write); ``on_stale='wait'`` forces a
        catch-up instead of falling back to the primary;
        ``prefer_replica=False`` pins the read to the primary. Reads never
        consume CSNs, on whichever database serves them. With
        ``stream=True`` non-historical reads return a streamed result
        pinned to the serving database's snapshot.
        """
        if on_stale not in ("primary", "wait"):
            raise ReplicationError(f"unknown on_stale mode {on_stale!r}")
        stmt = self.primary._parse(sql)
        if not isinstance(stmt, SelectStmt):
            raise ReplicationError(
                "execute_read supports SELECT statements only"
            )
        rs = self.replica_set
        if stmt.as_of is not None:
            replica = (
                rs.covering_replica(evaluate_as_of(stmt, params))
                if prefer_replica
                else None
            )
            if replica is not None:
                self.stats["replica_reads"] += 1
                return replica.database.execute(sql, params)
            self.stats["primary_reads"] += 1
            return self.primary.execute(sql, params)
        if not prefer_replica:
            self.stats["primary_reads"] += 1
            return _read_on(self.primary, sql, params, stream=stream)
        replica = rs.pick(self.policy, min_csn=floor)
        if replica is None and rs.replicas and on_stale == "wait":
            rs.catch_up()
            self.stats["catch_up_waits"] += 1
            replica = rs.pick(self.policy, min_csn=floor)
        if replica is None:
            key = "stale_fallbacks" if rs.replicas else "primary_reads"
            self.stats[key] += 1
            return _read_on(self.primary, sql, params, stream=stream)
        self.stats["replica_reads"] += 1
        return _read_on(replica.database, sql, params, stream=stream)

    def explain(self, sql: str) -> list[str]:
        return self.primary.explain(sql)

    def table_rows(self, table: str) -> list[dict[str, Any]]:
        return self.primary.table_rows(table)

    def snapshot_rows(self, table: str) -> list[tuple[int, tuple]]:
        return self.primary.snapshot_rows(table)

    # -- observers (TROD interposition attaches to the primary) -----------

    def add_observer(self, observer: Any) -> None:
        self.primary.add_observer(observer)

    def remove_observer(self, observer: Any) -> None:
        self.primary.remove_observer(observer)

    @property
    def track_reads(self) -> bool:
        return self.primary.track_reads

    @track_reads.setter
    def track_reads(self, value: bool) -> None:
        self.primary.track_reads = value

    # -- cluster management ------------------------------------------------

    def catch_up(self, limit: int | None = None) -> int:
        return self.replica_set.catch_up(limit=limit)

    def ship_loop(
        self,
        scheduler: Any = None,
        batch: int = 32,
        max_batches: int | None = None,
    ) -> int:
        """Background catch-up (see :meth:`ReplicaSet.ship_loop`)."""
        return self.replica_set.ship_loop(
            scheduler=scheduler, batch=batch, max_batches=max_batches
        )

    def failover(self, target: Replica | str | None = None) -> Database:
        """Promote a replica (see :meth:`ReplicaSet.promote`).

        An attached TROD observer keeps tracing: replicas apply commits
        through real transactions, so observer hooks must be re-registered
        on the promoted database by the caller if tracing should continue.
        """
        return self.replica_set.promote(target)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ReplicatedDatabase primary={self.primary.name!r} "
            f"replicas={len(self.replica_set)} mode={self.replica_set.mode}>"
        )


class ShardedReadRouter:
    """Replica-aware routing over a :class:`ShardedDatabase`.

    Requires :meth:`ShardedDatabase.attach_replicas`. Scatter-gather
    SELECTs are served per shard by that shard's replica set (DML and 2PC
    stay on the primaries); the session token is the *global* CSN of the
    session's last write, translated through the aligned commit log into
    each shard's local floor.
    """

    def __init__(
        self,
        sharded: "ShardedDatabase",
        policy: str = "round_robin",
        on_stale: str = "primary",
    ):
        if not sharded.replica_sets:
            raise ReplicationError(
                "sharded database has no replicas; call attach_replicas() first"
            )
        if on_stale not in ("primary", "wait"):
            raise ReplicationError(f"unknown on_stale mode {on_stale!r}")
        self.sharded = sharded
        self.policy = policy
        self.on_stale = on_stale
        self.stats = {
            "replica_reads": 0,
            "primary_reads": 0,
            "stale_fallbacks": 0,
            "catch_up_waits": 0,
            "writes": 0,
        }

    def _floors(self, session: Session | None) -> dict[str, int]:
        if session is None or session.last_global_csn == 0:
            return {}
        return self.sharded.coordinator.local_csns_at(session.last_global_csn)

    def _chooser(self, floors: dict[str, int]) -> Callable[[str], Database]:
        def choose(store: str) -> Database:
            rs = self.sharded.replica_sets.get(store)
            if rs is None or not rs.replicas:
                self.stats["primary_reads"] += 1
                return self.sharded.shard_named(store)
            floor = floors.get(store, 0)
            replica = rs.pick(self.policy, min_csn=floor)
            if replica is None and self.on_stale == "wait":
                rs.catch_up()
                self.stats["catch_up_waits"] += 1
                replica = rs.pick(self.policy, min_csn=floor)
            if replica is None:
                self.stats["stale_fallbacks"] += 1
                return rs.primary
            self.stats["replica_reads"] += 1
            return replica.database

        return choose

    def execute(
        self, sql: str, params: Sequence[Any] = (), session: Session | None = None
    ) -> ResultSet:
        sharded = self.sharded
        stmt = sharded._parse(sql)
        if isinstance(stmt, SelectStmt):
            if stmt.as_of is not None:
                # Historical read: replicas qualify by CSN coverage, not
                # by the session floor.
                return self._select_as_of(
                    stmt, evaluate_as_of(stmt, params), params, sql
                )
            return sharded.select_routed(
                sql, params, db_for=self._chooser(self._floors(session))
            )
        if isinstance(
            stmt, (CreateTableStmt, DropTableStmt, CreateIndexStmt, DropIndexStmt)
        ):
            result = sharded.execute(sql, params)  # DDL: primaries fan-out
            # DDL records consume no CSN, so the per-shard floors cannot
            # gate them; synchronize replicas before any routed read.
            sharded.catch_up_replicas()
            return result
        # DML: explicit global transaction so the global CSN is known for
        # the session token (autocommit would swallow it).
        gtxn = sharded.begin()
        try:
            result = sharded.execute(sql, params, txn=gtxn)
            global_csn = gtxn.commit()
        except Exception:
            if gtxn.status is TransactionStatus.ACTIVE:
                gtxn.abort()
            raise
        if session is not None:
            session.note_global_write(global_csn)
        self.stats["writes"] += 1
        return result

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        return self.execute(sql, params)

    def execute_as_of(
        self, sql: str, global_csn: int, params: Sequence[Any] = ()
    ) -> ResultSet:
        """Deprecated: use ``SELECT ... AS OF <csn>`` through ``execute``."""
        warnings.warn(
            "ShardedReadRouter.execute_as_of is deprecated; use the "
            "SELECT ... AS OF <csn> clause through execute()/repro.connect()",
            DeprecationWarning,
            stacklevel=2,
        )
        stmt = self.sharded._parse(sql)
        if not isinstance(stmt, SelectStmt):
            raise ReplicationError(
                "AS OF execution supports SELECT statements only"
            )
        return self._select_as_of(stmt, global_csn, params, sql)

    def _select_as_of(
        self, stmt: SelectStmt, global_csn: int, params: Sequence[Any], sql: str
    ) -> ResultSet:
        """An AS-OF scatter read served by replicas that cover the CSN."""
        local_csns = self.sharded.time_travel.local_csns_at(global_csn)

        def choose(store: str) -> Database:
            rs = self.sharded.replica_sets.get(store)
            replica = (
                rs.covering_replica(local_csns[store]) if rs is not None else None
            )
            if replica is not None:
                self.stats["replica_reads"] += 1
                return replica.database
            self.stats["primary_reads"] += 1
            return self.sharded.shard_named(store)

        return self.sharded._select_as_of(stmt, global_csn, params, choose, sql)

    def catch_up_all(self, limit: int | None = None) -> int:
        """Catch up every shard's replicas; returns records applied."""
        return sum(
            rs.catch_up(limit=limit) for rs in self.sharded.replica_sets.values()
        )
