"""Write-ahead log (redo-only, plus two-phase-commit bookkeeping).

The engine buffers all writes privately until commit, so the WAL mostly
needs commit records: each :class:`WalCommit` carries the commit sequence
number and the full ordered list of row changes. Replaying commits in CSN
order reconstructs the database exactly — :func:`recover_into` does this
and is exercised by the crash-recovery tests.

Two-phase commit adds two typed records. A :class:`WalPrepare` persists a
branch's buffered changes at prepare time (flushed immediately — the
coordinator may only log its decision once every branch is durably
prepared), and a :class:`WalAbort` closes out a durably prepared branch
that was rolled back. A prepare with no matching commit or abort record
is *in doubt* (:meth:`WriteAheadLog.in_doubt`); recovery resolves it by
consulting the coordinator's decision log — commit if a decision was
logged, abort otherwise (presumed abort). Commit records keep their
original untagged JSON shape, so WAL files written before this existed
replay unchanged; the new records carry a ``"kind"`` discriminator.

The log lives in memory and can optionally mirror to a JSONL file, which is
how the durability simulation (the "Postgres-like" backend profile) models
its fsync cost.

Group commit: with ``group_size > 1`` file mirroring batches serialized
commits and drains them in a single ``write`` + ``flush`` (one
fsync-equivalent per batch) instead of one per commit. Concurrent
committers — which the cooperative scheduler lands back to back — thus
share a flush. The usual group-commit durability window applies: commits
buffered but not yet flushed are lost on a crash (:meth:`flush` narrows
the window; :meth:`close` always drains). ``fsync=True`` additionally
issues a real ``os.fsync`` per drain, which is what the write-heavy
benchmark uses to measure the amortization honestly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import WalError
from repro.faults import fault_point


@dataclass(frozen=True)
class WalChange:
    """One row change inside a commit."""

    op: str  # 'insert' | 'update' | 'delete'
    table: str
    row_id: int
    values: tuple | None  # new values (None for delete)
    old_values: tuple | None  # previous values (None for insert)

    def to_json(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "table": self.table,
            "row_id": self.row_id,
            "values": list(self.values) if self.values is not None else None,
            "old_values": list(self.old_values) if self.old_values is not None else None,
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "WalChange":
        return WalChange(
            op=data["op"],
            table=data["table"],
            row_id=data["row_id"],
            values=tuple(data["values"]) if data["values"] is not None else None,
            old_values=(
                tuple(data["old_values"]) if data["old_values"] is not None else None
            ),
        )


@dataclass(frozen=True)
class WalCommit:
    """A committed transaction's redo record."""

    csn: int
    txn_id: int
    changes: tuple[WalChange, ...]

    def to_json(self) -> dict[str, Any]:
        return {
            "csn": self.csn,
            "txn_id": self.txn_id,
            "changes": [c.to_json() for c in self.changes],
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "WalCommit":
        if "kind" in data:
            raise ValueError(f"not a commit record: kind={data['kind']!r}")
        return WalCommit(
            csn=data["csn"],
            txn_id=data["txn_id"],
            changes=tuple(WalChange.from_json(c) for c in data["changes"]),
        )


@dataclass(frozen=True)
class WalPrepare:
    """A 2PC branch's durably prepared (but not yet decided) changes."""

    gtxn_id: int  # the coordinator's global transaction id
    txn_id: int  # this branch's local transaction id
    changes: tuple[WalChange, ...]

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": "prepare",
            "gtxn": self.gtxn_id,
            "txn_id": self.txn_id,
            "changes": [c.to_json() for c in self.changes],
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "WalPrepare":
        return WalPrepare(
            gtxn_id=data["gtxn"],
            txn_id=data["txn_id"],
            changes=tuple(WalChange.from_json(c) for c in data["changes"]),
        )


@dataclass(frozen=True)
class WalAbort:
    """Closes out a durably prepared branch that rolled back."""

    txn_id: int
    gtxn_id: int

    def to_json(self) -> dict[str, Any]:
        return {"kind": "abort", "txn_id": self.txn_id, "gtxn": self.gtxn_id}

    @staticmethod
    def from_json(data: dict[str, Any]) -> "WalAbort":
        return WalAbort(txn_id=data["txn_id"], gtxn_id=data["gtxn"])


def _record_from_json(data: Any) -> "WalCommit | WalPrepare | WalAbort":
    kind = data.get("kind") if isinstance(data, dict) else None
    if kind is None:
        return WalCommit.from_json(data)
    if kind == "prepare":
        return WalPrepare.from_json(data)
    if kind == "abort":
        return WalAbort.from_json(data)
    raise ValueError(f"unknown WAL record kind {kind!r}")


class WriteAheadLog:
    """Ordered, append-only log of commits."""

    def __init__(
        self,
        path: str | None = None,
        group_size: int = 1,
        fsync: bool = False,
    ):
        if group_size < 1:
            raise WalError(f"group_size must be >= 1, got {group_size}")
        self._commits: list[WalCommit] = []
        self._path = path
        self._file = open(path, "a", encoding="utf-8") if path else None
        self._group_size = group_size
        self._fsync = fsync
        #: Serialized commits awaiting their group's flush.
        self._pending: list[str] = []
        self.flush_stats = {"appends": 0, "flushes": 0}
        #: Set by :meth:`load` when a truncated trailing record (crash
        #: mid-append) was dropped to reach a clean recovery point.
        self.torn_tail_dropped = False
        #: 2PC bookkeeping: durably prepared branches and how each was
        #: resolved. A prepare whose txn_id appears in neither set is in
        #: doubt after a crash.
        self._prepares: list[WalPrepare] = []
        self._committed_txns: set[int] = set()
        self._aborted_txns: set[int] = set()

    def append(self, commit: WalCommit) -> None:
        if self._commits and commit.csn <= self._commits[-1].csn:
            raise WalError(
                f"out-of-order commit: csn {commit.csn} after "
                f"{self._commits[-1].csn}"
            )
        self._commits.append(commit)
        self._committed_txns.add(commit.txn_id)
        if self._file is not None:
            self._pending.append(json.dumps(commit.to_json()))
            self.flush_stats["appends"] += 1
            if len(self._pending) >= self._group_size:
                self.flush()

    def append_prepare(self, prepare: WalPrepare) -> None:
        """Persist a 2PC branch's prepare record, flushed immediately:
        the coordinator must not log a commit decision until every
        branch's prepared changes are durable."""
        self._prepares.append(prepare)
        if self._file is not None:
            self._pending.append(json.dumps(prepare.to_json()))
            self.flush_stats["appends"] += 1
            self.flush()

    def append_abort(self, abort: WalAbort) -> None:
        """Close out a durably prepared branch that rolled back (group
        buffered — losing an abort record is harmless under presumed
        abort; recovery re-aborts the undecided prepare)."""
        self._aborted_txns.add(abort.txn_id)
        if self._file is not None:
            self._pending.append(json.dumps(abort.to_json()))
            self.flush_stats["appends"] += 1
            if len(self._pending) >= self._group_size:
                self.flush()

    def in_doubt(self) -> list[WalPrepare]:
        """Durably prepared branches with no commit or abort record."""
        return [
            p
            for p in self._prepares
            if p.txn_id not in self._committed_txns
            and p.txn_id not in self._aborted_txns
        ]

    def flush(self) -> None:
        """Drain buffered commits with one write + flush (the group's
        single fsync-equivalent)."""
        if self._file is None or not self._pending:
            return
        fault_point("wal.flush", path=self._path, pending=len(self._pending))
        self._file.write("\n".join(self._pending) + "\n")
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        self._pending.clear()
        self.flush_stats["flushes"] += 1

    @property
    def pending_count(self) -> int:
        """Commits appended but not yet made durable."""
        return len(self._pending)

    def commits(self, since_csn: int = 0) -> Iterator[WalCommit]:
        """Commits with csn > ``since_csn``, in order."""
        for commit in self._commits:
            if commit.csn > since_csn:
                yield commit

    def last_csn(self) -> int:
        return self._commits[-1].csn if self._commits else 0

    def __len__(self) -> int:
        return len(self._commits)

    def close(self) -> None:
        if self._file is not None:
            self.flush()
            self._file.close()
            self._file = None

    @property
    def path(self) -> str | None:
        return self._path

    @staticmethod
    def load(
        path: str,
        *,
        attach: bool = False,
        group_size: int = 1,
        fsync: bool = False,
    ) -> "WriteAheadLog":
        """Read a JSONL WAL file back into memory.

        A crash can tear the final record (the process died mid-write),
        leaving a truncated JSON line at the tail. That is a *clean
        recovery point*, not corruption: every record before it replays
        and the partial tail is dropped (``torn_tail_dropped`` is set on
        the returned log). An unparsable record *followed by further
        valid records* is genuine corruption and still raises
        :class:`~repro.errors.WalError`.

        With ``attach=True`` the log stays bound to ``path`` for
        continued appends — the recovery path uses this so a reopened
        database keeps writing the same file. A dropped torn tail is
        physically truncated away first so the file never carries dead
        bytes forward.
        """
        wal = WriteAheadLog()
        with open(path, "rb") as handle:
            raw = handle.read()
        bad_at: int | None = None
        valid_end = 0  # byte offset just past the last valid record
        offset = 0
        for raw_line in raw.split(b"\n"):
            next_offset = offset + len(raw_line) + 1
            stripped = raw_line.strip()
            if stripped:
                try:
                    record = _record_from_json(
                        json.loads(stripped.decode("utf-8"))
                    )
                except (ValueError, KeyError, TypeError):
                    record = None
                if record is None:
                    if bad_at is None:
                        bad_at = offset
                else:
                    if bad_at is not None:
                        raise WalError(
                            f"{path}: corrupt WAL record at byte {bad_at} "
                            "is followed by valid records"
                        )
                    if isinstance(record, WalCommit):
                        wal.append(record)
                    elif isinstance(record, WalPrepare):
                        wal._prepares.append(record)
                    else:
                        wal._aborted_txns.add(record.txn_id)
                    valid_end = min(next_offset, len(raw))
            offset = next_offset
        wal.torn_tail_dropped = bad_at is not None
        if attach:
            if bad_at is not None:
                with open(path, "r+b") as handle:
                    handle.truncate(valid_end)
            wal._path = path
            wal._file = open(path, "a", encoding="utf-8")
            wal._group_size = group_size
            wal._fsync = fsync
        return wal


def recover_into(stores: dict[str, Any], commits: Iterable[WalCommit]) -> int:
    """Redo ``commits`` (in order) against empty table stores.

    ``stores`` maps canonical table name to :class:`TableStore`. Returns
    the last applied CSN. Used by crash-recovery: rebuild a database from
    its schema catalog plus the WAL.
    """
    last = 0
    for commit in commits:
        for change in commit.changes:
            store = stores.get(change.table)
            if store is None:
                raise WalError(f"WAL references unknown table {change.table!r}")
            if change.op == "insert":
                store.apply_insert(change.values, commit.csn, row_id=change.row_id)
            elif change.op == "update":
                store.apply_update(change.row_id, change.values, commit.csn)
            elif change.op == "delete":
                store.apply_delete(change.row_id, commit.csn)
            else:  # pragma: no cover - constructed only by our code
                raise WalError(f"unknown WAL op {change.op!r}")
        last = commit.csn
    return last
