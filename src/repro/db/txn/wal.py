"""Write-ahead log (redo-only).

The engine buffers all writes privately until commit, so the WAL only needs
commit records: each :class:`WalCommit` carries the commit sequence number
and the full ordered list of row changes. Replaying commits in CSN order
reconstructs the database exactly — :func:`recover_into` does this and is
exercised by the crash-recovery tests.

The log lives in memory and can optionally mirror to a JSONL file, which is
how the durability simulation (the "Postgres-like" backend profile) models
its fsync cost.

Group commit: with ``group_size > 1`` file mirroring batches serialized
commits and drains them in a single ``write`` + ``flush`` (one
fsync-equivalent per batch) instead of one per commit. Concurrent
committers — which the cooperative scheduler lands back to back — thus
share a flush. The usual group-commit durability window applies: commits
buffered but not yet flushed are lost on a crash (:meth:`flush` narrows
the window; :meth:`close` always drains). ``fsync=True`` additionally
issues a real ``os.fsync`` per drain, which is what the write-heavy
benchmark uses to measure the amortization honestly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import WalError


@dataclass(frozen=True)
class WalChange:
    """One row change inside a commit."""

    op: str  # 'insert' | 'update' | 'delete'
    table: str
    row_id: int
    values: tuple | None  # new values (None for delete)
    old_values: tuple | None  # previous values (None for insert)

    def to_json(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "table": self.table,
            "row_id": self.row_id,
            "values": list(self.values) if self.values is not None else None,
            "old_values": list(self.old_values) if self.old_values is not None else None,
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "WalChange":
        return WalChange(
            op=data["op"],
            table=data["table"],
            row_id=data["row_id"],
            values=tuple(data["values"]) if data["values"] is not None else None,
            old_values=(
                tuple(data["old_values"]) if data["old_values"] is not None else None
            ),
        )


@dataclass(frozen=True)
class WalCommit:
    """A committed transaction's redo record."""

    csn: int
    txn_id: int
    changes: tuple[WalChange, ...]

    def to_json(self) -> dict[str, Any]:
        return {
            "csn": self.csn,
            "txn_id": self.txn_id,
            "changes": [c.to_json() for c in self.changes],
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "WalCommit":
        return WalCommit(
            csn=data["csn"],
            txn_id=data["txn_id"],
            changes=tuple(WalChange.from_json(c) for c in data["changes"]),
        )


class WriteAheadLog:
    """Ordered, append-only log of commits."""

    def __init__(
        self,
        path: str | None = None,
        group_size: int = 1,
        fsync: bool = False,
    ):
        if group_size < 1:
            raise WalError(f"group_size must be >= 1, got {group_size}")
        self._commits: list[WalCommit] = []
        self._path = path
        self._file = open(path, "a", encoding="utf-8") if path else None
        self._group_size = group_size
        self._fsync = fsync
        #: Serialized commits awaiting their group's flush.
        self._pending: list[str] = []
        self.flush_stats = {"appends": 0, "flushes": 0}
        #: Set by :meth:`load` when a truncated trailing record (crash
        #: mid-append) was dropped to reach a clean recovery point.
        self.torn_tail_dropped = False

    def append(self, commit: WalCommit) -> None:
        if self._commits and commit.csn <= self._commits[-1].csn:
            raise WalError(
                f"out-of-order commit: csn {commit.csn} after "
                f"{self._commits[-1].csn}"
            )
        self._commits.append(commit)
        if self._file is not None:
            self._pending.append(json.dumps(commit.to_json()))
            self.flush_stats["appends"] += 1
            if len(self._pending) >= self._group_size:
                self.flush()

    def flush(self) -> None:
        """Drain buffered commits with one write + flush (the group's
        single fsync-equivalent)."""
        if self._file is None or not self._pending:
            return
        self._file.write("\n".join(self._pending) + "\n")
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        self._pending.clear()
        self.flush_stats["flushes"] += 1

    @property
    def pending_count(self) -> int:
        """Commits appended but not yet made durable."""
        return len(self._pending)

    def commits(self, since_csn: int = 0) -> Iterator[WalCommit]:
        """Commits with csn > ``since_csn``, in order."""
        for commit in self._commits:
            if commit.csn > since_csn:
                yield commit

    def last_csn(self) -> int:
        return self._commits[-1].csn if self._commits else 0

    def __len__(self) -> int:
        return len(self._commits)

    def close(self) -> None:
        if self._file is not None:
            self.flush()
            self._file.close()
            self._file = None

    @property
    def path(self) -> str | None:
        return self._path

    @staticmethod
    def load(
        path: str,
        *,
        attach: bool = False,
        group_size: int = 1,
        fsync: bool = False,
    ) -> "WriteAheadLog":
        """Read a JSONL WAL file back into memory.

        A crash can tear the final record (the process died mid-write),
        leaving a truncated JSON line at the tail. That is a *clean
        recovery point*, not corruption: every record before it replays
        and the partial tail is dropped (``torn_tail_dropped`` is set on
        the returned log). An unparsable record *followed by further
        valid records* is genuine corruption and still raises
        :class:`~repro.errors.WalError`.

        With ``attach=True`` the log stays bound to ``path`` for
        continued appends — the recovery path uses this so a reopened
        database keeps writing the same file. A dropped torn tail is
        physically truncated away first so the file never carries dead
        bytes forward.
        """
        wal = WriteAheadLog()
        with open(path, "rb") as handle:
            raw = handle.read()
        bad_at: int | None = None
        valid_end = 0  # byte offset just past the last valid record
        offset = 0
        for raw_line in raw.split(b"\n"):
            next_offset = offset + len(raw_line) + 1
            stripped = raw_line.strip()
            if stripped:
                try:
                    commit = WalCommit.from_json(
                        json.loads(stripped.decode("utf-8"))
                    )
                except (ValueError, KeyError, TypeError):
                    commit = None
                if commit is None:
                    if bad_at is None:
                        bad_at = offset
                else:
                    if bad_at is not None:
                        raise WalError(
                            f"{path}: corrupt WAL record at byte {bad_at} "
                            "is followed by valid records"
                        )
                    wal.append(commit)
                    valid_end = min(next_offset, len(raw))
            offset = next_offset
        wal.torn_tail_dropped = bad_at is not None
        if attach:
            if bad_at is not None:
                with open(path, "r+b") as handle:
                    handle.truncate(valid_end)
            wal._path = path
            wal._file = open(path, "a", encoding="utf-8")
            wal._group_size = group_size
            wal._fsync = fsync
        return wal


def recover_into(stores: dict[str, Any], commits: Iterable[WalCommit]) -> int:
    """Redo ``commits`` (in order) against empty table stores.

    ``stores`` maps canonical table name to :class:`TableStore`. Returns
    the last applied CSN. Used by crash-recovery: rebuild a database from
    its schema catalog plus the WAL.
    """
    last = 0
    for commit in commits:
        for change in commit.changes:
            store = stores.get(change.table)
            if store is None:
                raise WalError(f"WAL references unknown table {change.table!r}")
            if change.op == "insert":
                store.apply_insert(change.values, commit.csn, row_id=change.row_id)
            elif change.op == "update":
                store.apply_update(change.row_id, change.values, commit.csn)
            elif change.op == "delete":
                store.apply_delete(change.row_id, commit.csn)
            else:  # pragma: no cover - constructed only by our code
                raise WalError(f"unknown WAL op {change.op!r}")
        last = commit.csn
    return last
