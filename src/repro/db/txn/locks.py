"""Two-phase locking with deadlock detection.

The lock manager implements strict 2PL: transactions acquire shared (S) or
exclusive (X) locks as they touch resources and hold them until commit or
abort. Resources are opaque strings — the transaction manager uses table
names (``"table:forum_sub"``), which is coarse but sufficient for the
paper's workloads and keeps conflicts easy to reason about in tests.

Because the runtime's cooperative scheduler admits one worker at a time,
the manager's data structures need no internal synchronization; a blocked
acquisition instead *yields* via an injectable wait callback so the
scheduler can run other workers until the lock frees up. Deadlocks are
detected eagerly on every blocked acquisition by searching the waits-for
graph; the requesting transaction is the victim, which is deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import DeadlockError, LockTimeoutError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class _LockState:
    """Current grant state for one resource."""

    mode: LockMode | None = None
    holders: set[int] = field(default_factory=set)

    def compatible(self, txn_id: int, mode: LockMode) -> bool:
        if not self.holders:
            return True
        if self.holders == {txn_id}:
            return True  # re-entrant or upgrade; handled by caller
        if mode is LockMode.SHARED and self.mode is LockMode.SHARED:
            return True
        return False


class LockManager:
    """Table-granularity S/X lock manager with waits-for deadlock detection."""

    def __init__(self, max_wait_rounds: int = 10_000):
        self._locks: dict[str, _LockState] = {}
        self._held: dict[int, set[str]] = {}
        self._waits_for: dict[int, set[int]] = {}
        self._max_wait_rounds = max_wait_rounds
        self.stats = {"acquisitions": 0, "waits": 0, "deadlocks": 0, "upgrades": 0}

    # -- public API -------------------------------------------------------

    def acquire(
        self,
        txn_id: int,
        resource: str,
        mode: LockMode,
        wait: Callable[[], None] | None = None,
    ) -> None:
        """Acquire ``resource`` in ``mode`` for ``txn_id``.

        If the lock is unavailable, ``wait`` is called repeatedly (it should
        yield to the scheduler) until the lock frees. Without a ``wait``
        callback a blocked acquisition raises :class:`LockTimeoutError`
        immediately — in single-threaded use contention means a programming
        error, not a race. Raises :class:`DeadlockError` when blocking would
        close a cycle in the waits-for graph.
        """
        rounds = 0
        while True:
            state = self._locks.setdefault(resource, _LockState())
            if self._try_grant(state, txn_id, mode, resource):
                self._waits_for.pop(txn_id, None)
                self.stats["acquisitions"] += 1
                return
            blockers = {t for t in state.holders if t != txn_id}
            self._waits_for[txn_id] = blockers
            if self._closes_cycle(txn_id):
                self._waits_for.pop(txn_id, None)
                self.stats["deadlocks"] += 1
                raise DeadlockError(
                    f"txn {txn_id} deadlocked acquiring {mode.value} on "
                    f"{resource!r} held by {sorted(blockers)}"
                )
            if wait is None:
                self._waits_for.pop(txn_id, None)
                raise LockTimeoutError(
                    f"txn {txn_id} blocked acquiring {mode.value} on "
                    f"{resource!r} held by {sorted(blockers)} with no waiter"
                )
            self.stats["waits"] += 1
            rounds += 1
            if rounds > self._max_wait_rounds:
                self._waits_for.pop(txn_id, None)
                raise LockTimeoutError(
                    f"txn {txn_id} starved acquiring {resource!r}"
                )
            wait()

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` (commit/abort time)."""
        for resource in self._held.pop(txn_id, set()):
            state = self._locks.get(resource)
            if state is None:
                continue
            state.holders.discard(txn_id)
            if not state.holders:
                del self._locks[resource]
        self._waits_for.pop(txn_id, None)

    def held_by(self, txn_id: int) -> set[str]:
        return set(self._held.get(txn_id, ()))

    def holders_of(self, resource: str) -> set[int]:
        state = self._locks.get(resource)
        return set(state.holders) if state else set()

    def mode_of(self, resource: str) -> LockMode | None:
        state = self._locks.get(resource)
        return state.mode if state and state.holders else None

    # -- internals ----------------------------------------------------------

    def _try_grant(
        self, state: _LockState, txn_id: int, mode: LockMode, resource: str
    ) -> bool:
        if not state.holders:
            state.holders = {txn_id}
            state.mode = mode
            self._held.setdefault(txn_id, set()).add(resource)
            return True
        if state.holders == {txn_id}:
            if mode is LockMode.EXCLUSIVE and state.mode is LockMode.SHARED:
                state.mode = LockMode.EXCLUSIVE
                self.stats["upgrades"] += 1
            return True
        if txn_id in state.holders:
            if mode is LockMode.SHARED or state.mode is LockMode.EXCLUSIVE:
                return True
            return False  # upgrade while others hold S: must wait
        if mode is LockMode.SHARED and state.mode is LockMode.SHARED:
            state.holders.add(txn_id)
            self._held.setdefault(txn_id, set()).add(resource)
            return True
        return False

    def _closes_cycle(self, start: int) -> bool:
        """DFS from ``start`` through waits-for edges looking for a cycle."""
        stack = list(self._waits_for.get(start, ()))
        seen: set[int] = set()
        while stack:
            txn = stack.pop()
            if txn == start:
                return True
            if txn in seen:
                continue
            seen.add(txn)
            stack.extend(self._waits_for.get(txn, ()))
        return False
