"""Transaction subsystem: locking, write-ahead logging, lifecycle."""

from repro.db.txn.locks import LockManager, LockMode
from repro.db.txn.manager import (
    IsolationLevel,
    ReadRecord,
    Transaction,
    TransactionManager,
    TransactionStatus,
    WriteOp,
)
from repro.db.txn.wal import WalCommit, WriteAheadLog

__all__ = [
    "IsolationLevel",
    "LockManager",
    "LockMode",
    "ReadRecord",
    "Transaction",
    "TransactionManager",
    "TransactionStatus",
    "WalCommit",
    "WriteAheadLog",
    "WriteOp",
]
