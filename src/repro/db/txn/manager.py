"""Transaction lifecycle: isolation levels, write buffering, commit.

The design matches the paper's assumptions (§3.1): the default isolation
level is SERIALIZABLE via strict two-phase locking, and commits are stamped
with a monotonically increasing commit sequence number (CSN) so that
"transactions are serializable and serialized in commit order" — strict
serializability. SNAPSHOT and READ_COMMITTED are also implemented because
§3.1 claims TROD extends to weak isolation via reenactment; the replay
engine exercises that path using the snapshot CSN recorded here.

Writes are buffered privately inside the transaction (read-your-own-writes
is provided by overlaying the buffer on the committed view) and applied to
the version store only at commit, which makes every version in storage
committed data and keeps CDC/WAL emission trivially in commit order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from repro.db.txn.locks import LockManager, LockMode
from repro.db.txn.wal import WalAbort, WalChange, WalCommit, WalPrepare
from repro.errors import (
    FencedError,
    IntegrityError,
    SerializationError,
    TransactionAborted,
    TransactionError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database


class IsolationLevel(enum.Enum):
    SERIALIZABLE = "SERIALIZABLE"
    SNAPSHOT = "SNAPSHOT"
    READ_COMMITTED = "READ_COMMITTED"


class TransactionStatus(enum.Enum):
    ACTIVE = "ACTIVE"
    PREPARED = "PREPARED"  # validated, awaiting a coordinator's decision
    COMMITTED = "COMMITTED"
    ABORTED = "ABORTED"


#: Sentinel marking a row deleted in a transaction's private overlay.
_DELETED = object()


@dataclass
class WriteOp:
    """One buffered write, applied at commit in execution order."""

    op: str  # 'insert' | 'update' | 'delete'
    table: str  # canonical name
    row_id: int
    values: tuple | None  # new values (None for delete)


@dataclass
class ReadRecord:
    """Provenance of one row read (or one empty result) by a statement.

    ``row_id``/``values`` are None when a query matched nothing — the
    paper's Table 2 logs such reads with null data columns, and replay's
    dependency analysis still needs to know the table was consulted.
    """

    table: str
    row_id: int | None
    values: tuple | None
    query: str


class Transaction:
    """A single transaction; created via :meth:`TransactionManager.begin`."""

    def __init__(
        self,
        manager: "TransactionManager",
        txn_id: int,
        isolation: IsolationLevel,
        snapshot_csn: int,
        info: dict[str, Any] | None = None,
    ):
        self._manager = manager
        self.txn_id = txn_id
        self.isolation = isolation
        self.snapshot_csn = snapshot_csn
        self.status = TransactionStatus.ACTIVE
        #: Free-form metadata attached by the runtime (req_id, handler,
        #: function label) and consumed by TROD's interposition layer.
        self.info: dict[str, Any] = dict(info or {})
        self.write_ops: list[WriteOp] = []
        self.read_records: list[ReadRecord] = []
        self._overlay: dict[str, dict[int, Any]] = {}  # table -> row_id -> values|_DELETED
        self._inserted: dict[str, list[int]] = {}  # table -> ordered new row ids
        self._statement_reads: list[ReadRecord] = []
        self._statement_csn = snapshot_csn
        self.commit_csn: int | None = None
        #: Set when this branch was durably prepared on behalf of a
        #: global transaction; an abort must then write a WAL abort
        #: record so the prepare never reads as in-doubt after a crash.
        self.prepared_gtxn: int | None = None

    # -- naming --------------------------------------------------------------

    @property
    def name(self) -> str:
        """Display name used throughout provenance ("TXN7")."""
        return f"TXN{self.txn_id}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Transaction {self.name} {self.isolation.value} {self.status.value}>"

    # -- statement lifecycle ---------------------------------------------------

    def begin_statement(self) -> None:
        """Mark a statement boundary (refreshes READ_COMMITTED's view)."""
        self._check_active()
        self._statement_reads = []
        if self.isolation is IsolationLevel.READ_COMMITTED:
            self._statement_csn = self._manager.last_csn

    def statement_reads(self) -> list[ReadRecord]:
        return list(self._statement_reads)

    def _read_csn(self) -> int | None:
        """The committed snapshot this transaction reads (None = latest)."""
        if self.isolation is IsolationLevel.SERIALIZABLE:
            return None  # 2PL: reading latest committed is safe
        if self.isolation is IsolationLevel.SNAPSHOT:
            return self.snapshot_csn
        return self._statement_csn

    # -- data access (called by the SQL executor) ------------------------------

    def scan(self, table: str) -> Iterator[tuple[int, tuple]]:
        """All rows visible to this transaction: committed view + own writes.

        Liveness checking, lock acquisition, and snapshot selection all
        happen *at call time*; the returned iterator is pinned to that
        state and keeps serving it even if this transaction later commits
        or aborts. Streamed cursors rely on exactly this: the ephemeral
        read transaction is finished as soon as the pipeline is primed,
        and the stream stays consistent with its snapshot regardless.
        """
        self._check_active()
        canonical = self._manager.database.catalog.resolve(table)
        if self.isolation is IsolationLevel.SERIALIZABLE:
            self._lock(canonical, LockMode.SHARED)
        store = self._manager.database.store(canonical)
        return self._scan_pinned(
            store.scan(self._read_csn()),
            self._overlay.get(canonical, {}),
            self._inserted.get(canonical, ()),
        )

    def scan_materialized(self, table: str) -> "list[tuple] | None":
        """The shared materialized values list when it matches this txn's view.

        Returns the store's values-only live-row list (callers must not
        mutate it)
        when this transaction has no private writes on ``table`` and its
        read snapshot covers the table's last committed write — i.e. the
        latest state *is* the snapshot state. Otherwise returns None and
        the caller falls back to :meth:`scan`. Side effects (liveness
        check, SERIALIZABLE shared lock) are identical to ``scan``, so
        the executor's batch path schedules and conflicts the same way
        as the row-at-a-time path.
        """
        self._check_active()
        canonical = self._manager.database.catalog.resolve(table)
        if self._overlay.get(canonical) or self._inserted.get(canonical):
            return None
        if self.isolation is IsolationLevel.SERIALIZABLE:
            self._lock(canonical, LockMode.SHARED)
        store = self._manager.database.store(canonical)
        csn = self._read_csn()
        if csn is not None and csn < store.last_write_csn:
            return None
        return store.latest_values()

    @staticmethod
    def _scan_pinned(
        committed: Iterator[tuple[int, tuple]],
        overlay: dict[int, Any],
        inserted: Sequence[int],
    ) -> Iterator[tuple[int, tuple]]:
        """Overlay this transaction's writes on a pinned committed scan."""
        for row_id, values in committed:
            if row_id in overlay:
                patched = overlay[row_id]
                if patched is not _DELETED:
                    yield row_id, patched
            else:
                yield row_id, values
        for row_id in inserted:
            patched = overlay.get(row_id)
            if patched is not None and patched is not _DELETED:
                yield row_id, patched

    def get(self, table: str, row_id: int) -> tuple | None:
        """One row by id under this transaction's visibility rules."""
        self._check_active()
        canonical = self._manager.database.catalog.resolve(table)
        overlay = self._overlay.get(canonical, {})
        if row_id in overlay:
            patched = overlay[row_id]
            return None if patched is _DELETED else patched
        store = self._manager.database.store(canonical)
        return store.get(row_id, self._read_csn())

    def insert(self, table: str, values: tuple) -> int:
        """Buffer an insert; returns the new row id (visible to self)."""
        self._check_active()
        canonical = self._manager.database.catalog.resolve(table)
        if self.isolation is IsolationLevel.SERIALIZABLE:
            self._lock(canonical, LockMode.EXCLUSIVE)
        self._check_unique_locally(canonical, values, ignore_row_id=None)
        store = self._manager.database.store(canonical)
        row_id = store.reserve_row_id()
        self._overlay.setdefault(canonical, {})[row_id] = values
        self._inserted.setdefault(canonical, []).append(row_id)
        self.write_ops.append(
            WriteOp(op="insert", table=canonical, row_id=row_id, values=values)
        )
        return row_id

    def insert_with_id(self, table: str, values: tuple, row_id: int) -> int:
        """Insert preserving an explicit row id.

        Used by TROD's replay injector so that rows restored into a dev
        database keep their provenance row identity. The id must not be
        live in this transaction's view.
        """
        self._check_active()
        canonical = self._manager.database.catalog.resolve(table)
        if self.isolation is IsolationLevel.SERIALIZABLE:
            self._lock(canonical, LockMode.EXCLUSIVE)
        if self.get(canonical, row_id) is not None:
            raise TransactionError(
                f"{self.name}: row {row_id} already live in {canonical}"
            )
        self._check_unique_locally(canonical, values, ignore_row_id=None)
        store = self._manager.database.store(canonical)
        if row_id >= store._next_row_id:
            store._next_row_id = row_id + 1
        self._overlay.setdefault(canonical, {})[row_id] = values
        self._inserted.setdefault(canonical, []).append(row_id)
        self.write_ops.append(
            WriteOp(op="insert", table=canonical, row_id=row_id, values=values)
        )
        return row_id

    def update(self, table: str, row_id: int, values: tuple) -> None:
        self._check_active()
        canonical = self._manager.database.catalog.resolve(table)
        if self.isolation is IsolationLevel.SERIALIZABLE:
            self._lock(canonical, LockMode.EXCLUSIVE)
        if self.get(canonical, row_id) is None:
            raise TransactionError(
                f"{self.name}: cannot update missing row {row_id} in {canonical}"
            )
        self._check_unique_locally(canonical, values, ignore_row_id=row_id)
        self._overlay.setdefault(canonical, {})[row_id] = values
        self.write_ops.append(
            WriteOp(op="update", table=canonical, row_id=row_id, values=values)
        )

    def delete(self, table: str, row_id: int) -> None:
        self._check_active()
        canonical = self._manager.database.catalog.resolve(table)
        if self.isolation is IsolationLevel.SERIALIZABLE:
            self._lock(canonical, LockMode.EXCLUSIVE)
        if self.get(canonical, row_id) is None:
            raise TransactionError(
                f"{self.name}: cannot delete missing row {row_id} in {canonical}"
            )
        self._overlay.setdefault(canonical, {})[row_id] = _DELETED
        self.write_ops.append(
            WriteOp(op="delete", table=canonical, row_id=row_id, values=None)
        )

    def pending_rows(self, table: str) -> list[tuple[int, tuple]]:
        """Rows this transaction has written (and not deleted), by row id.

        Index probes merge these with committed index hits, because
        uncommitted writes are never reflected in shared indexes.
        """
        canonical = self._manager.database.catalog.resolve(table)
        overlay = self._overlay.get(canonical, {})
        return [
            (row_id, values)
            for row_id, values in sorted(overlay.items())
            if values is not _DELETED
        ]

    def record_read(
        self, table: str, row_id: int | None, values: tuple | None, query: str
    ) -> None:
        canonical = self._manager.database.catalog.resolve(table)
        record = ReadRecord(table=canonical, row_id=row_id, values=values, query=query)
        self.read_records.append(record)
        self._statement_reads.append(record)

    # -- lifecycle ------------------------------------------------------------

    def commit(self) -> int:
        return self._manager.commit(self)

    def abort(self) -> None:
        self._manager.abort(self)

    @property
    def tables_written(self) -> set[str]:
        return {op.table for op in self.write_ops}

    @property
    def tables_read(self) -> set[str]:
        return {r.table for r in self.read_records}

    # -- internals --------------------------------------------------------------

    def _check_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise TransactionAborted(
                f"{self.name} is {self.status.value}; no further operations allowed"
            )

    def _lock(self, canonical: str, mode: LockMode) -> None:
        self._manager.acquire_lock(self, f"table:{canonical}", mode)

    def _check_unique_locally(
        self, canonical: str, values: tuple, ignore_row_id: int | None
    ) -> None:
        """Enforce unique constraints against this transaction's own view.

        Under 2PL the table X lock makes this authoritative; under SNAPSHOT
        isolation a cross-transaction re-check happens again at commit.
        """
        schema = self._manager.database.catalog.get(canonical)
        if not schema.unique_constraints:
            return
        for constraint in schema.unique_constraints:
            key = schema.key_for(constraint, values)
            if None in key:
                continue
            for row_id, existing in self.scan(canonical):
                if row_id == ignore_row_id:
                    continue
                if schema.key_for(constraint, existing) == key:
                    raise IntegrityError(
                        f"unique violation on {canonical}({', '.join(constraint)}): "
                        f"key {key!r}"
                    )


class TransactionManager:
    """Begins, commits, and aborts transactions for one database."""

    def __init__(self, database: "Database"):
        self.database = database
        self.locks = LockManager()
        self._next_txn_id = 1
        self.last_csn = 0
        self.active: dict[int, Transaction] = {}
        #: txn_id -> commit csn for every committed transaction; TROD's
        #: provenance and the time-travel layer use this mapping.
        self.commit_index: dict[int, int] = {}
        self.csn_index: dict[int, int] = {}  # csn -> txn_id
        #: Called when a lock acquisition must wait; the runtime points this
        #: at the scheduler so other workers can make progress.
        self.wait_hook: Callable[[Transaction, str], None] | None = None
        self.stats = {"begun": 0, "committed": 0, "aborted": 0}

    # -- lifecycle -------------------------------------------------------------

    def begin(
        self,
        isolation: IsolationLevel = IsolationLevel.SERIALIZABLE,
        info: dict[str, Any] | None = None,
    ) -> Transaction:
        txn = Transaction(
            manager=self,
            txn_id=self._next_txn_id,
            isolation=isolation,
            snapshot_csn=self.last_csn,
            info=info,
        )
        self._next_txn_id += 1
        self.active[txn.txn_id] = txn
        self.stats["begun"] += 1
        self.database.notify("txn_began", txn)
        return txn

    def prepare(self, txn: Transaction, *, gtxn_id: int | None = None) -> None:
        """First phase of two-phase commit: validate without applying.

        A PREPARED transaction is guaranteed to commit successfully (its
        conflicts and constraints were checked); the cross-store
        coordinator uses this to make multi-database commits atomic.
        Validation failure aborts the transaction.

        With ``gtxn_id`` the prepare is also made *durable*: the branch's
        buffered changes land in the WAL as a flushed prepare record, so
        a crash between prepare and the coordinator's phase-2 leaves an
        in-doubt record that recovery resolves against the coordinator's
        decision log instead of silently losing the branch.
        """
        if txn.status is not TransactionStatus.ACTIVE:
            raise TransactionError(
                f"{txn.name} cannot prepare from {txn.status.value}"
            )
        try:
            self._validate_commit(txn)
        except Exception:
            self.abort(txn)
            raise
        txn.status = TransactionStatus.PREPARED
        if gtxn_id is not None and txn.write_ops:
            self.database.wal.append_prepare(
                WalPrepare(
                    gtxn_id=gtxn_id,
                    txn_id=txn.txn_id,
                    changes=tuple(
                        WalChange(
                            op=op.op,
                            table=op.table,
                            row_id=op.row_id,
                            values=op.values,
                            old_values=None,
                        )
                        for op in txn.write_ops
                    ),
                )
            )
            txn.prepared_gtxn = gtxn_id

    def commit(self, txn: Transaction) -> int:
        if txn.status is TransactionStatus.COMMITTED:
            raise TransactionError(f"{txn.name} already committed")
        if txn.status is TransactionStatus.ABORTED:
            raise TransactionAborted(f"{txn.name} already aborted")
        if self.database.fenced:
            # A transaction begun before the fence must not slip a commit
            # past it: the promoted replica would never see the write.
            self.abort(txn)
            raise FencedError(
                f"database {self.database.name!r} is fenced; "
                f"{txn.name} aborted"
            )
        if txn.status is TransactionStatus.PREPARED:
            txn.status = TransactionStatus.ACTIVE  # validated; fall through
        else:
            try:
                self._validate_commit(txn)
            except Exception:
                self.abort(txn)
                raise
        csn = self.last_csn + 1
        changes = self._apply(txn, csn)
        if self.database.backend is not None:
            self.database.backend.on_commit(len(changes))
        self.last_csn = csn
        txn.status = TransactionStatus.COMMITTED
        txn.commit_csn = csn
        self.commit_index[txn.txn_id] = csn
        self.csn_index[csn] = txn.txn_id
        self.active.pop(txn.txn_id, None)
        if changes:
            self.database.wal.append(
                WalCommit(
                    csn=csn,
                    txn_id=txn.txn_id,
                    changes=tuple(
                        WalChange(
                            op=c.op,
                            table=c.table,
                            row_id=c.row_id,
                            values=c.values,
                            old_values=c.old_values,
                        )
                        for c in changes
                    ),
                )
            )
        cdc_records = [
            self.database.cdc.emit(
                csn=csn,
                txn_id=txn.txn_id,
                table=c.table,
                op=c.op,
                row_id=c.row_id,
                values=c.values,
                old_values=c.old_values,
            )
            for c in changes
        ]
        self.locks.release_all(txn.txn_id)
        self.stats["committed"] += 1
        self.database.notify("txn_committed", txn, csn, cdc_records)
        return csn

    def abort(self, txn: Transaction) -> None:
        if txn.status not in (TransactionStatus.ACTIVE, TransactionStatus.PREPARED):
            return
        txn.status = TransactionStatus.ABORTED
        self.active.pop(txn.txn_id, None)
        self.locks.release_all(txn.txn_id)
        if txn.prepared_gtxn is not None:
            self.database.wal.append_abort(
                WalAbort(txn_id=txn.txn_id, gtxn_id=txn.prepared_gtxn)
            )
        self.stats["aborted"] += 1
        self.database.notify("txn_aborted", txn)

    def commit_recovered(self, prepare: WalPrepare) -> int:
        """Apply an in-doubt prepared branch whose coordinator logged a
        commit decision before the crash (recovery-only phase-2 repair).

        The prepare record carries the branch's full change list; it is
        applied at the next CSN, stamped into the commit/CSN indexes
        under its original txn_id, and re-logged as a normal WAL commit
        record so the prepare stops reading as in-doubt on later opens.
        """
        csn = self.last_csn + 1
        for change in prepare.changes:
            store = self.database.store(change.table)
            indexes = self.database.index_set(change.table)
            if change.op == "insert":
                store.apply_insert(change.values, csn, row_id=change.row_id)
                indexes.on_insert(change.row_id, change.values)
            elif change.op == "update":
                old = store.apply_update(change.row_id, change.values, csn)
                indexes.on_update(change.row_id, old, change.values)
            else:
                old = store.apply_delete(change.row_id, csn)
                indexes.on_delete(change.row_id, old)
        self.last_csn = csn
        self.commit_index[prepare.txn_id] = csn
        self.csn_index[csn] = prepare.txn_id
        self._next_txn_id = max(self._next_txn_id, prepare.txn_id + 1)
        self.database.wal.append(
            WalCommit(csn=csn, txn_id=prepare.txn_id, changes=prepare.changes)
        )
        self.database.wal.flush()
        self.stats["committed"] += 1
        return csn

    # -- commit internals ---------------------------------------------------------

    def _validate_commit(self, txn: Transaction) -> None:
        if txn.isolation is IsolationLevel.SNAPSHOT:
            self._first_committer_check(txn)
        self._unique_check_vs_committed(txn)

    def _first_committer_check(self, txn: Transaction) -> None:
        """SI write-write conflict detection (first committer wins)."""
        own_inserts = {
            (op.table, op.row_id) for op in txn.write_ops if op.op == "insert"
        }
        for op in txn.write_ops:
            if op.op == "insert" or (op.table, op.row_id) in own_inserts:
                continue
            store = self.database.store(op.table)
            changed = store.last_change_csn(op.row_id)
            if changed is not None and changed > txn.snapshot_csn:
                raise SerializationError(
                    f"{txn.name}: write-write conflict on "
                    f"{op.table} row {op.row_id} (changed at csn {changed}, "
                    f"snapshot was {txn.snapshot_csn})"
                )

    def _unique_check_vs_committed(self, txn: Transaction) -> None:
        """Re-check unique constraints against the latest committed state.

        Needed for SNAPSHOT/READ_COMMITTED where a concurrent committer may
        have inserted a conflicting key after this transaction's local
        check. Own rows (replaced by this txn's updates) are excluded.
        Known limitation: a single commit swapping unique keys between two
        existing rows is rejected, because each new key is checked against
        the pre-commit index state.
        """
        final_values: dict[tuple[str, int], tuple | None] = {}
        for op in txn.write_ops:
            final_values[(op.table, op.row_id)] = op.values
        for (table, row_id), values in final_values.items():
            if values is None:
                continue
            self.database.index_set(table).check_insert(values, ignore_row_id=row_id)

    def _apply(self, txn: Transaction, csn: int) -> list["_AppliedChange"]:
        applied: list[_AppliedChange] = []
        for op in txn.write_ops:
            store = self.database.store(op.table)
            indexes = self.database.index_set(op.table)
            if op.op == "insert":
                store.apply_insert(op.values, csn, row_id=op.row_id)
                indexes.on_insert(op.row_id, op.values)
                applied.append(
                    _AppliedChange("insert", op.table, op.row_id, op.values, None)
                )
            elif op.op == "update":
                old = store.apply_update(op.row_id, op.values, csn)
                indexes.on_update(op.row_id, old, op.values)
                applied.append(
                    _AppliedChange("update", op.table, op.row_id, op.values, old)
                )
            else:
                old = store.apply_delete(op.row_id, csn)
                indexes.on_delete(op.row_id, old)
                applied.append(
                    _AppliedChange("delete", op.table, op.row_id, None, old)
                )
        return applied

    # -- locks -------------------------------------------------------------------

    def acquire_lock(self, txn: Transaction, resource: str, mode: LockMode) -> None:
        def wait() -> None:
            if self.wait_hook is not None:
                self.wait_hook(txn, resource)

        self.locks.acquire(
            txn.txn_id,
            resource,
            mode,
            wait=wait if self.wait_hook is not None else None,
        )

    # -- introspection ---------------------------------------------------------

    def csn_of(self, txn_id: int) -> int | None:
        return self.commit_index.get(txn_id)

    def txn_at_csn(self, csn: int) -> int | None:
        return self.csn_index.get(csn)


@dataclass
class _AppliedChange:
    op: str
    table: str
    row_id: int
    values: tuple | None
    old_values: tuple | None
