"""Multi-version row storage.

Every committed write creates a :class:`RowVersion` stamped with the commit
sequence number (CSN) at which it became visible (``begin``) and, once
superseded or deleted, the CSN at which it stopped being visible (``end``).
Keeping every version is what gives the engine time travel: TROD's replay
engine reconstructs "the database as of CSN *c*" directly from this store.

The store itself is oblivious to transactions: the transaction manager
buffers writes privately and calls the ``apply_*`` methods only at commit,
in commit order, so versions here are always committed data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.db.schema import TableSchema
from repro.errors import DatabaseError

#: CSN value meaning "still visible".
INFINITY = None


@dataclass
class RowVersion:
    """One committed version of one row."""

    row_id: int
    begin: int
    end: int | None
    values: tuple

    def visible_at(self, csn: int) -> bool:
        """Whether this version is the live one in the snapshot at ``csn``."""
        if self.begin > csn:
            return False
        return self.end is None or self.end > csn


class TableStore:
    """Versioned storage for one table.

    ``row_id`` is a surrogate identity that survives updates (an UPDATE
    creates a new version of the same row_id). It is also what provenance
    events use to name rows, so replayed databases preserve row identity by
    passing explicit row ids to :meth:`apply_insert`.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._versions: dict[int, list[RowVersion]] = {}
        self._next_row_id = 1

    # -- write path (called by the transaction manager at commit) --------

    def reserve_row_id(self) -> int:
        row_id = self._next_row_id
        self._next_row_id += 1
        return row_id

    def apply_insert(self, values: tuple, csn: int, row_id: int | None = None) -> int:
        """Install a new row visible from ``csn``; returns its row id."""
        if row_id is None:
            row_id = self.reserve_row_id()
        else:
            if row_id >= self._next_row_id:
                self._next_row_id = row_id + 1
            chain = self._versions.get(row_id)
            if chain and chain[-1].end is None:
                raise DatabaseError(
                    f"{self.schema.name}: row {row_id} already live at insert"
                )
        self._versions.setdefault(row_id, []).append(
            RowVersion(row_id=row_id, begin=csn, end=None, values=values)
        )
        return row_id

    def apply_update(self, row_id: int, values: tuple, csn: int) -> tuple:
        """Supersede the live version of ``row_id``; returns the old values."""
        current = self._live_version(row_id)
        current.end = csn
        self._versions[row_id].append(
            RowVersion(row_id=row_id, begin=csn, end=None, values=values)
        )
        return current.values

    def apply_delete(self, row_id: int, csn: int) -> tuple:
        """End the live version of ``row_id``; returns the deleted values."""
        current = self._live_version(row_id)
        current.end = csn
        return current.values

    def _live_version(self, row_id: int) -> RowVersion:
        chain = self._versions.get(row_id)
        if not chain or chain[-1].end is not None:
            raise DatabaseError(
                f"{self.schema.name}: row {row_id} is not live"
            )
        return chain[-1]

    # -- read path --------------------------------------------------------

    def get(self, row_id: int, csn: int | None = None) -> tuple | None:
        """The values of ``row_id`` visible at ``csn`` (latest if None)."""
        chain = self._versions.get(row_id)
        if not chain:
            return None
        if csn is None:
            last = chain[-1]
            return last.values if last.end is None else None
        for version in reversed(chain):
            if version.visible_at(csn):
                return version.values
        return None

    def scan(self, csn: int | None = None) -> Iterator[tuple[int, tuple]]:
        """Yield ``(row_id, values)`` for rows visible at ``csn``.

        Iteration order is row-id order, which is insertion order for
        engine-assigned ids — deterministic, which the scheduler and the
        replay fidelity checks rely on.
        """
        for row_id in sorted(self._versions):
            values = self.get(row_id, csn)
            if values is not None:
                yield row_id, values

    def row_count(self, csn: int | None = None) -> int:
        return sum(1 for _ in self.scan(csn))

    def last_change_csn(self, row_id: int) -> int | None:
        """CSN of the most recent change to ``row_id`` (None if unknown).

        Used by snapshot isolation's first-committer-wins check: a writer
        conflicts if someone changed the row after its snapshot.
        """
        chain = self._versions.get(row_id)
        if not chain:
            return None
        last = chain[-1]
        return last.begin if last.end is None else last.end

    def version_count(self) -> int:
        """Total stored versions (used by GC tests and stats)."""
        return sum(len(chain) for chain in self._versions.values())

    def live_row_ids(self) -> list[int]:
        return [rid for rid, _ in self.scan(None)]

    # -- maintenance -------------------------------------------------------

    def vacuum(self, keep_after_csn: int) -> int:
        """Drop versions not visible at or after ``keep_after_csn``.

        Returns the number of versions removed. Time travel to points
        earlier than ``keep_after_csn`` becomes impossible afterwards;
        the database tracks the resulting horizon.
        """
        removed = 0
        for row_id in list(self._versions):
            chain = self._versions[row_id]
            kept = [
                v
                for v in chain
                if v.end is None or v.end > keep_after_csn
            ]
            removed += len(chain) - len(kept)
            if kept:
                self._versions[row_id] = kept
            else:
                del self._versions[row_id]
        return removed

    def stats(self) -> dict[str, int]:
        return {
            "live_rows": self.row_count(None),
            "versions": self.version_count(),
            "next_row_id": self._next_row_id,
        }
