"""Multi-version row storage.

Every committed write creates a :class:`RowVersion` stamped with the commit
sequence number (CSN) at which it became visible (``begin``) and, once
superseded or deleted, the CSN at which it stopped being visible (``end``).
Keeping every version is what gives the engine time travel: TROD's replay
engine reconstructs "the database as of CSN *c*" directly from this store.

The store itself is oblivious to transactions: the transaction manager
buffers writes privately and calls the ``apply_*`` methods only at commit,
in commit order, so versions here are always committed data.

Read-path layout: latest-state reads (``csn=None``) are served from an
incrementally maintained live-row map plus a sorted-id cache, so scans and
point reads never walk version chains; snapshot reads (``csn`` given) keep
the version-chain path but locate the candidate version by bisecting on
``begin`` CSNs, which commit order keeps ascending within each chain.

Scans are *pinned at call time*: :meth:`TableStore.scan` resolves its row
source when called and returns an iterator that keeps serving that exact
state however long the caller takes to drain it. Latest-state scans pin
the shared materialized row list (writers never mutate a published list —
they null the slot and a later scan rebuilds), so any number of concurrent
readers iterate the same list with zero per-reader copies; the iterator's
reference keeps the snapshot alive across invalidations. This is what
lets streamed cursors and batch-yielding cooperative scans stay
snapshot-consistent while writers commit underneath them.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from operator import attrgetter
from typing import Iterator

from repro.db.schema import TableSchema
from repro.errors import DatabaseError

#: CSN value meaning "still visible".
INFINITY = None

_BEGIN = attrgetter("begin")


@dataclass
class RowVersion:
    """One committed version of one row."""

    row_id: int
    begin: int
    end: int | None
    values: tuple

    def visible_at(self, csn: int) -> bool:
        """Whether this version is the live one in the snapshot at ``csn``."""
        if self.begin > csn:
            return False
        return self.end is None or self.end > csn


class TableStore:
    """Versioned storage for one table.

    ``row_id`` is a surrogate identity that survives updates (an UPDATE
    creates a new version of the same row_id). It is also what provenance
    events use to name rows, so replayed databases preserve row identity by
    passing explicit row ids to :meth:`apply_insert`.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._versions: dict[int, list[RowVersion]] = {}
        self._next_row_id = 1
        #: row_id -> live RowVersion (the chain tail when its end is None).
        self._live: dict[int, RowVersion] = {}
        #: Sorted live row ids; appends are O(1) for the common case of
        #: monotonically increasing engine-assigned ids.
        self._live_ids: list[int] = []
        #: Sorted ids of every row with any version (live or dead) — the
        #: snapshot-scan iteration order, cached so scans stop re-sorting.
        self._all_ids: list[int] = []
        #: Materialized ``(row_id, values)`` list for latest-state scans,
        #: rebuilt lazily after any write invalidates it. Read-mostly
        #: tables scan straight off this list.
        self._scan_rows: list[tuple[int, tuple]] | None = None
        #: Values-only projection of ``_scan_rows`` for the batch
        #: executor, which needs no row ids (reads are untracked on the
        #: batch path). Same publish-then-never-mutate discipline.
        self._scan_values: list[tuple] | None = None
        #: Bumped by every applied write (and by vacuum); a scan pinned at
        #: epoch e keeps serving epoch-e rows even after the counter
        #: moves on — tests and diagnostics use it to prove pinning.
        self.write_epoch = 0
        #: CSN of the most recent applied write to this table. A snapshot
        #: at csn >= this sees exactly the latest state, which lets the
        #: executor's batch scans serve SNAPSHOT reads straight off the
        #: materialized live-row list. Vacuum removes only versions dead
        #: before its horizon, never changing any state at or after it,
        #: so it does not move this.
        self.last_write_csn = 0

    # -- version lifecycle (storage-backend hooks) ------------------------
    #
    # The paged backend subclasses TableStore and overrides only these
    # two: where a version's bytes live (in-memory tuple vs. slotted
    # page record) is decided here, while every apply_*/read method and
    # all cache/epoch bookkeeping stays shared.

    def _new_version(self, row_id: int, begin: int, values: tuple) -> RowVersion:
        """Materialize a new live version (``end`` = infinity)."""
        return RowVersion(row_id=row_id, begin=begin, end=None, values=values)

    def _seal_version(self, version: RowVersion, end: int) -> None:
        """Stamp the CSN at which ``version`` stopped being visible."""
        version.end = end

    # -- cache maintenance -------------------------------------------------

    def _add_sorted(self, ids: list[int], row_id: int) -> None:
        if not ids or row_id > ids[-1]:
            ids.append(row_id)
        else:
            index = bisect.bisect_left(ids, row_id)
            if index >= len(ids) or ids[index] != row_id:
                ids.insert(index, row_id)

    def _remove_sorted(self, ids: list[int], row_id: int) -> None:
        index = bisect.bisect_left(ids, row_id)
        if index < len(ids) and ids[index] == row_id:
            ids.pop(index)

    # -- write path (called by the transaction manager at commit) --------

    def reserve_row_id(self) -> int:
        row_id = self._next_row_id
        self._next_row_id += 1
        return row_id

    def apply_insert(self, values: tuple, csn: int, row_id: int | None = None) -> int:
        """Install a new row visible from ``csn``; returns its row id."""
        if row_id is None:
            row_id = self.reserve_row_id()
        else:
            if row_id >= self._next_row_id:
                self._next_row_id = row_id + 1
            if row_id in self._live:
                raise DatabaseError(
                    f"{self.schema.name}: row {row_id} already live at insert"
                )
        version = self._new_version(row_id, csn, values)
        chain = self._versions.get(row_id)
        if chain is None:
            self._versions[row_id] = [version]
            self._add_sorted(self._all_ids, row_id)
        else:
            chain.append(version)
        self._live[row_id] = version
        self._add_sorted(self._live_ids, row_id)
        self._scan_rows = None
        self._scan_values = None
        self.last_write_csn = csn
        self.write_epoch += 1
        return row_id

    def apply_update(self, row_id: int, values: tuple, csn: int) -> tuple:
        """Supersede the live version of ``row_id``; returns the old values."""
        current = self._live_version(row_id)
        old_values = current.values
        self._seal_version(current, csn)
        version = self._new_version(row_id, csn, values)
        self._versions[row_id].append(version)
        self._live[row_id] = version
        self._scan_rows = None
        self._scan_values = None
        self.last_write_csn = csn
        self.write_epoch += 1
        return old_values

    def apply_delete(self, row_id: int, csn: int) -> tuple:
        """End the live version of ``row_id``; returns the deleted values."""
        current = self._live_version(row_id)
        old_values = current.values
        self._seal_version(current, csn)
        del self._live[row_id]
        self._remove_sorted(self._live_ids, row_id)
        self._scan_rows = None
        self._scan_values = None
        self.last_write_csn = csn
        self.write_epoch += 1
        return old_values

    def _live_version(self, row_id: int) -> RowVersion:
        version = self._live.get(row_id)
        if version is None:
            raise DatabaseError(
                f"{self.schema.name}: row {row_id} is not live"
            )
        return version

    # -- read path --------------------------------------------------------

    def get(self, row_id: int, csn: int | None = None) -> tuple | None:
        """The values of ``row_id`` visible at ``csn`` (latest if None)."""
        if csn is None:
            version = self._live.get(row_id)
            return version.values if version is not None else None
        chain = self._versions.get(row_id)
        if not chain:
            return None
        # Chains are appended in commit (CSN) order, so ``begin`` values
        # ascend; the candidate is the last version with begin <= csn.
        index = bisect.bisect_right(chain, csn, key=_BEGIN)
        if index == 0:
            return None
        version = chain[index - 1]
        if version.end is None or version.end > csn:
            return version.values
        return None

    def scan(self, csn: int | None = None) -> Iterator[tuple[int, tuple]]:
        """An iterator of ``(row_id, values)`` for rows visible at ``csn``.

        Iteration order is row-id order, which is insertion order for
        engine-assigned ids — deterministic, which the scheduler and the
        replay fidelity checks rely on.

        The row source is resolved *now*, not at first ``next()``: the
        returned iterator is pinned to this call's state and stays
        consistent however the store changes while it is drained (commits
        landing mid-iteration, the caller's transaction finishing, a
        cooperative yield handing the baton to a writer). Latest-state
        scans share the materialized row list across every concurrent
        reader — zero per-reader copies.
        """
        if csn is None:
            return iter(self.latest_rows())
        # Snapshot scan: the id list is copied now; ``get`` bisects the
        # version chains, which later commits only ever append to (and
        # whose sealed versions they never reshape below ``csn``), so
        # lazy iteration remains snapshot-consistent under writers.
        return self._scan_versions(list(self._all_ids), csn)

    def latest_rows(self) -> list[tuple[int, tuple]]:
        """The shared materialized latest-state row list (do not mutate).

        Writers never mutate a published list — they null the cache slot
        and a later scan rebuilds — so holding a reference pins a
        consistent snapshot for as long as needed, at zero copy cost.
        """
        rows = self._scan_rows
        if rows is None:
            live = self._live
            rows = [(rid, live[rid].values) for rid in self._live_ids]
            self._scan_rows = rows
        return rows

    def latest_values(self) -> list[tuple]:
        """The shared values-only latest-state row list (do not mutate).

        Same pinning discipline as :meth:`latest_rows`; the batch
        executor scans off this list directly so hot queries pay zero
        per-execution extraction cost.
        """
        values = self._scan_values
        if values is None:
            values = [v for _rid, v in self.latest_rows()]
            self._scan_values = values
        return values

    def _scan_versions(
        self, row_ids: list[int], csn: int
    ) -> Iterator[tuple[int, tuple]]:
        get = self.get
        for row_id in row_ids:
            values = get(row_id, csn)
            if values is not None:
                yield row_id, values

    def row_count(self, csn: int | None = None) -> int:
        if csn is None:
            return len(self._live)
        return sum(1 for _ in self.scan(csn))

    def last_change_csn(self, row_id: int) -> int | None:
        """CSN of the most recent change to ``row_id`` (None if unknown).

        Used by snapshot isolation's first-committer-wins check: a writer
        conflicts if someone changed the row after its snapshot.
        """
        chain = self._versions.get(row_id)
        if not chain:
            return None
        last = chain[-1]
        return last.begin if last.end is None else last.end

    def version_count(self) -> int:
        """Total stored versions (used by GC tests and stats)."""
        return sum(len(chain) for chain in self._versions.values())

    def live_row_ids(self) -> list[int]:
        return list(self._live_ids)

    # -- maintenance -------------------------------------------------------

    def vacuum(self, keep_after_csn: int) -> int:
        """Drop versions not visible at or after ``keep_after_csn``.

        Returns the number of versions removed. Time travel to points
        earlier than ``keep_after_csn`` becomes impossible afterwards;
        the database tracks the resulting horizon.
        """
        removed = 0
        for row_id in list(self._versions):
            chain = self._versions[row_id]
            kept = [
                v
                for v in chain
                if v.end is None or v.end > keep_after_csn
            ]
            removed += len(chain) - len(kept)
            if kept:
                self._versions[row_id] = kept
            else:
                del self._versions[row_id]
        self._rebuild_caches()
        return removed

    def _rebuild_caches(self) -> None:
        """Recompute the live/sorted caches from the version chains."""
        self._all_ids = sorted(self._versions)
        self._live = {
            row_id: chain[-1]
            for row_id, chain in self._versions.items()
            if chain[-1].end is None
        }
        self._live_ids = sorted(self._live)
        self._scan_rows = None
        self._scan_values = None
        self.write_epoch += 1

    def stats(self) -> dict[str, int]:
        return {
            "live_rows": len(self._live),
            "versions": self.version_count(),
            "next_row_id": self._next_row_id,
        }
