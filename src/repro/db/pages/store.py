"""Paged :class:`TableStore`: version payloads live in slotted pages.

:class:`PagedTableStore` subclasses the in-memory store and overrides
only the version-lifecycle hooks — every ``apply_*`` method, the live-row
caches, ``write_epoch``/``last_write_csn`` semantics, pinned scans, and
the snapshot bisect read path are inherited unchanged, which is what
keeps the SQL executor, compiled batch path, sharding, and replication
running unmodified on top.

A :class:`PagedVersion` keeps the MVCC metadata (``row_id``, ``begin``,
``end``) in memory — chains still bisect without touching disk — but its
``values`` live in a page record and are decoded through the buffer pool
on demand. Sealing a version patches the 8-byte ``end`` field in place.

Durability protocol:

- Writes go to pool frames; eviction may push them to disk early.
- ``flush(csn)`` (checkpoint) writes back every dirty frame, then
  durably records ``flushed_csn = csn`` in the file header.
- ``load`` scans the pages, rebuilds chains (normalizing ``end`` stamps
  that a crash left stale), and the database replays only the WAL tail
  above ``flushed_csn`` through :meth:`reconcile`, which is idempotent —
  pages flushed after the last checkpoint replay as no-ops.
"""

from __future__ import annotations

import bisect
import struct
from operator import attrgetter

from repro.db.pages.buffer import BufferPool
from repro.db.pages.file_manager import PageFile, PageFileManager
from repro.db.pages.page import (
    FLAG_INLINE,
    FLAG_OVERFLOW,
    HEADER_SIZE,
    KIND_DATA,
    KIND_OVERFLOW,
    OVERFLOW_REF,
    RECORD_END_OFFSET,
    RECORD_HEADER,
    SLOT_SIZE,
    Page,
    decode_values,
    encode_record,
    encode_values,
)
from repro.db.schema import TableSchema
from repro.db.storage import TableStore
from repro.db.txn.wal import WalChange
from repro.errors import PageCorruptError, StorageError, WalError

_BEGIN = attrgetter("begin")
_END_PATCH = struct.Struct("<q")


def _reclaim_orphan_pages(
    file: PageFile,
    data_pages: set[int],
    overflow_refs: list[int],
    overflow_next: dict[int, int | None],
) -> int:
    """Return crash-orphaned pages to the file's free list.

    A checkpoint that crashes partway can flush an overflow chain whose
    owning data record never reached disk; WAL replay then reconciles the
    insert by writing a *fresh* chain, so the flushed one is permanently
    unreferenced — invisible to ``load`` (which follows data records) and
    absent from the free list. The same crash can leave all-zero holes
    from out-of-order file extension, or ``KIND_FREE`` pages stamped after
    the last durable header (unreachable from the recovered free head).

    Called at the end of the recovery scan, before WAL replay: any
    allocated page that is neither a data page, an overflow page reachable
    from a data record, nor already on the free list is stamped free, so
    the tail replay's allocations reuse it instead of growing the file.
    """
    referenced: set[int] = set()
    stack = list(overflow_refs)
    while stack:
        page_id = stack.pop()
        if page_id in referenced:
            continue
        referenced.add(page_id)
        next_id = overflow_next.get(page_id)
        if next_id is not None:
            stack.append(next_id)
    on_free_list: set[int] = set()
    head = file.free_head
    while head is not None and head not in on_free_list:
        on_free_list.add(head)
        try:
            head = file.read_page(head).free_next()
        except (PageCorruptError, StorageError):
            break  # broken tail; the sweep below re-frees what it finds
    reclaimed = 0
    for page_id in range(file.npages):
        if (
            page_id in data_pages
            or page_id in referenced
            or page_id in on_free_list
        ):
            continue
        file.free(page_id)
        reclaimed += 1
    return reclaimed


class PagedVersion:
    """One committed row version whose payload lives in a page record.

    Duck-types :class:`~repro.db.storage.RowVersion`: same fields, same
    ``visible_at``, but ``values`` is a lazy read through the buffer
    pool. Holds a reference to its :class:`PageFile` so versions pinned
    by long snapshot scans keep reading the pre-vacuum file even after a
    compact-rewrite replaced it on disk.
    """

    __slots__ = ("row_id", "begin", "end", "file", "page_id", "slot", "store")

    def __init__(
        self,
        row_id: int,
        begin: int,
        end: int | None,
        file: PageFile,
        page_id: int,
        slot: int,
        store: "PagedTableStore",
    ):
        self.row_id = row_id
        self.begin = begin
        self.end = end
        self.file = file
        self.page_id = page_id
        self.slot = slot
        self.store = store

    @property
    def values(self) -> tuple:
        return self.store._read_version_values(self)

    def visible_at(self, csn: int) -> bool:
        if self.begin > csn:
            return False
        return self.end is None or self.end > csn


class PagedTableStore(TableStore):
    """Versioned storage for one table, backed by a page file."""

    def __init__(
        self,
        schema: TableSchema,
        manager: PageFileManager,
        pool: BufferPool,
        table_key: str,
        file: PageFile,
    ):
        super().__init__(schema)
        self._manager = manager
        self._pool = pool
        self._table_key = table_key
        self._file = file
        #: Current partially-filled data page (append target), or None.
        self._fill_pid: int | None = None
        #: Every commit at or below this CSN is durable in the data pages
        #: (recorded in the file header at checkpoint).
        self.flushed_csn: int = file.meta.get("flushed_csn", 0)
        #: Pages returned to the free list by the recovery orphan sweep.
        self.orphan_pages_reclaimed: int = 0

    # -- version lifecycle hooks ------------------------------------------

    def _new_version(self, row_id: int, begin: int, values: tuple) -> PagedVersion:
        return self._write_record(row_id, begin, None, values)

    def _seal_version(self, version: PagedVersion, end: int) -> None:
        version.end = end
        frame = self._pool.fetch(version.file, version.page_id)
        try:
            frame.page.patch_record(
                version.slot, RECORD_END_OFFSET, _END_PATCH.pack(end)
            )
        finally:
            self._pool.release(frame, dirty=True)

    # -- record I/O --------------------------------------------------------

    def _max_inline(self) -> int:
        return self._file.page_size - HEADER_SIZE - SLOT_SIZE

    def _write_record(
        self, row_id: int, begin: int, end: int | None, values: tuple
    ) -> PagedVersion:
        payload = encode_values(values)
        record = encode_record(row_id, begin, end, FLAG_INLINE, payload)
        if len(record) > self._max_inline():
            first = self._write_overflow_chain(payload)
            record = encode_record(
                row_id, begin, end, FLAG_OVERFLOW,
                OVERFLOW_REF.pack(first, len(payload)),
            )
        frame, slot = self._append_record(record)
        version = PagedVersion(
            row_id, begin, end, self._file, frame.page.page_id, slot, self
        )
        self._pool.release(frame, dirty=True)
        return version

    def _append_record(self, record: bytes):
        pool, file = self._pool, self._file
        if self._fill_pid is not None:
            frame = pool.fetch(file, self._fill_pid)
            slot = frame.page.insert_record(record)
            if slot is not None:
                return frame, slot
            pool.release(frame)
        page_id = file.allocate()
        page = Page(page_id, file.page_size, kind=KIND_DATA)
        frame = pool.adopt(file, page)
        slot = page.insert_record(record)
        if slot is None:  # pragma: no cover - overflow path prevents this
            pool.release(frame)
            raise StorageError(
                f"{self.schema.name}: record of {len(record)} bytes does not "
                f"fit an empty page"
            )
        self._fill_pid = page_id
        return frame, slot

    def _write_overflow_chain(self, payload: bytes) -> int:
        file, pool = self._file, self._pool
        capacity = Page.overflow_capacity(file.page_size)
        chunks = [payload[i : i + capacity] for i in range(0, len(payload), capacity)]
        page_ids = [file.allocate() for _ in chunks]
        for index, chunk in enumerate(chunks):
            page = Page(page_ids[index], file.page_size, kind=KIND_OVERFLOW)
            next_id = page_ids[index + 1] if index + 1 < len(page_ids) else None
            page.set_overflow(next_id, chunk)
            frame = pool.adopt(file, page)
            pool.release(frame, dirty=True)
        return page_ids[0]

    def _read_version_values(self, version: PagedVersion) -> tuple:
        pool = self._pool
        frame = pool.fetch(version.file, version.page_id)
        try:
            record = frame.page.read_record(version.slot)
            flags = record[RECORD_HEADER.size - 1]
            payload = bytes(record[RECORD_HEADER.size :])
        finally:
            pool.release(frame)
        if flags == FLAG_OVERFLOW:
            first, total = OVERFLOW_REF.unpack(payload[: OVERFLOW_REF.size])
            payload = self._read_overflow_chain(version.file, first, total)
        return decode_values(payload)

    def _read_overflow_chain(
        self, file: PageFile, first_page: int, total_len: int
    ) -> bytes:
        pool = self._pool
        parts: list[bytes] = []
        next_id: int | None = first_page
        while next_id is not None:
            frame = pool.fetch(file, next_id)
            try:
                next_id, chunk = frame.page.read_overflow()
            finally:
                pool.release(frame)
            parts.append(chunk)
        payload = b"".join(parts)
        if len(payload) != total_len:
            raise StorageError(
                f"{self.schema.name}: overflow chain from page {first_page} "
                f"yielded {len(payload)} bytes, expected {total_len}"
            )
        return payload

    # -- checkpoint / durability ------------------------------------------

    def flush(self, csn: int) -> None:
        """Make every commit at or below ``csn`` durable in the pages."""
        self._pool.flush_file(self._file)
        self._file.write_header(
            flushed_csn=csn, next_row_id=self._next_row_id
        )
        self.flushed_csn = csn

    # -- recovery ----------------------------------------------------------

    @classmethod
    def load(
        cls,
        schema: TableSchema,
        manager: PageFileManager,
        pool: BufferPool,
        table_key: str,
    ) -> "PagedTableStore":
        """Rebuild a store from its page file (no WAL replay here)."""
        file = manager.open(table_key)
        store = cls(schema, manager, pool, table_key, file)
        chains: dict[int, list[PagedVersion]] = {}
        max_row_id = 0
        max_csn = 0
        fill_pid = None
        data_pages: set[int] = set()
        overflow_refs: list[int] = []
        overflow_next: dict[int, int | None] = {}
        for page in file.scan_pages():
            if page.kind == KIND_OVERFLOW:
                overflow_next[page.page_id] = page.overflow_next()
                continue
            if page.kind != KIND_DATA:
                continue
            data_pages.add(page.page_id)
            for slot, record in page.records():
                row_id, begin, enc_end, flags = RECORD_HEADER.unpack_from(record, 0)
                end = None if enc_end == -1 else enc_end
                if flags == FLAG_OVERFLOW:
                    overflow_refs.append(
                        OVERFLOW_REF.unpack_from(record, RECORD_HEADER.size)[0]
                    )
                version = PagedVersion(
                    row_id, begin, end, file, page.page_id, slot, store
                )
                chains.setdefault(row_id, []).append(version)
                max_row_id = max(max_row_id, row_id)
                max_csn = max(max_csn, begin, end or 0)
            if page.free_space() > 0:
                fill_pid = page.page_id
        for chain in chains.values():
            chain.sort(key=_BEGIN)
            # A crash can leave a superseded version's end stamp stale
            # (its page missed the flush that carried its successor).
            # Chains are begin-ordered and versions never overlap, so the
            # correct end of every non-tail version is its successor's
            # begin; restore any that disagree, on disk too.
            for current, successor in zip(chain, chain[1:]):
                if current.end != successor.begin:
                    store._seal_version(current, successor.begin)
        store._versions = chains
        store._next_row_id = max(
            max_row_id + 1, file.meta.get("next_row_id", 1)
        )
        store.last_write_csn = max_csn
        store._fill_pid = fill_pid
        store.orphan_pages_reclaimed = _reclaim_orphan_pages(
            file, data_pages, overflow_refs, overflow_next
        )
        store._rebuild_caches()
        store.write_epoch = 0
        return store

    def reconcile(self, change: WalChange, csn: int) -> bool:
        """Idempotently redo one WAL change during recovery.

        Data pages may already contain any suffix of the replayed tail
        (buffer-pool evictions push pages newer than the checkpoint
        header). Returns True if the change actually mutated the store.

        Only used during recovery, before any reader exists: live/scan
        caches are not maintained here — the database rebuilds them once
        after the full tail is replayed (:meth:`finish_recovery`).
        """
        row_id = change.row_id
        chain = self._versions.get(row_id)
        if change.op == "insert":
            index = (
                bisect.bisect_right(chain, csn, key=_BEGIN) if chain else 0
            )
            if chain and index > 0 and chain[index - 1].begin == csn:
                return False  # already on disk
            next_begin = chain[index].begin if chain and index < len(chain) else None
            version = self._write_record(row_id, csn, next_begin, change.values)
            if chain is None:
                self._versions[row_id] = [version]
            else:
                chain.insert(index, version)
            if row_id >= self._next_row_id:
                self._next_row_id = row_id + 1
        elif change.op == "update":
            if not chain:
                raise WalError(
                    f"{self.schema.name}: WAL update of unknown row {row_id}"
                )
            index = bisect.bisect_right(chain, csn, key=_BEGIN)
            if index > 0 and chain[index - 1].begin == csn:
                return False
            if index == 0:
                raise WalError(
                    f"{self.schema.name}: WAL update of row {row_id} at csn "
                    f"{csn} precedes its first version"
                )
            predecessor = chain[index - 1]
            if predecessor.end is None or predecessor.end > csn:
                self._seal_version(predecessor, csn)
            next_begin = chain[index].begin if index < len(chain) else None
            version = self._write_record(row_id, csn, next_begin, change.values)
            chain.insert(index, version)
        elif change.op == "delete":
            if not chain:
                raise WalError(
                    f"{self.schema.name}: WAL delete of unknown row {row_id}"
                )
            index = bisect.bisect_right(chain, csn, key=_BEGIN)
            if index == 0:
                raise WalError(
                    f"{self.schema.name}: WAL delete of row {row_id} at csn "
                    f"{csn} precedes its first version"
                )
            victim = chain[index - 1]
            if victim.end is not None and victim.end <= csn:
                return False  # already sealed on disk
            self._seal_version(victim, csn)
        else:  # pragma: no cover - constructed only by our code
            raise WalError(f"unknown WAL op {change.op!r}")
        self.last_write_csn = max(self.last_write_csn, csn)
        return True

    def finish_recovery(self) -> None:
        """Rebuild the live/scan caches after the WAL tail is replayed."""
        self._rebuild_caches()
        self.write_epoch = 0

    # -- maintenance -------------------------------------------------------

    def vacuum(self, keep_after_csn: int) -> int:
        """Drop dead versions by compact-rewriting into a fresh file.

        The old file object is kept alive by any still-pinned versions
        (snapshot scans started before the vacuum read the unlinked
        inode); new reads and writes go to the compacted file.
        """
        old_file = self._file
        old_fill = self._fill_pid
        new_file = self._manager.start_rewrite(self._table_key)
        removed = 0
        new_versions: dict[int, list[PagedVersion]] = {}
        self._file = new_file
        self._fill_pid = None
        try:
            for row_id in sorted(self._versions):
                chain = self._versions[row_id]
                kept = [
                    v for v in chain if v.end is None or v.end > keep_after_csn
                ]
                removed += len(chain) - len(kept)
                if not kept:
                    continue
                new_versions[row_id] = [
                    self._write_record(v.row_id, v.begin, v.end, v.values)
                    for v in kept
                ]
        except BaseException:
            self._file = old_file
            self._fill_pid = old_fill
            self._manager.abort_rewrite(new_file)
            raise
        # Persist the compacted state, then swap it in. The rewrite holds
        # everything the store has applied, so the new header's
        # flushed_csn can advance to the newest applied commit.
        flushed = max(self.flushed_csn, self.last_write_csn)
        self._pool.flush_file(new_file)
        new_file.write_header(
            flushed_csn=flushed, next_row_id=self._next_row_id
        )
        # Old dirty frames must reach the old file before its frames are
        # dropped: pinned snapshot readers re-read it through the pool.
        self._pool.flush_file(old_file)
        self._manager.commit_rewrite(self._table_key, new_file)
        self._pool.drop_file(old_file)
        self.flushed_csn = flushed
        self._versions = new_versions
        self._rebuild_caches()
        return removed

    # -- stats -------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        base = super().stats()
        base["file_pages"] = self._file.npages
        base["flushed_csn"] = self.flushed_csn
        base["orphan_pages_reclaimed"] = self.orphan_pages_reclaimed
        return base
