"""Slotted page layout with per-page checksums.

A page is a fixed-size ``bytearray`` with a small header, a slot
directory growing up from the header, and a record heap growing down
from the end of the page::

    +--------+----------------+---------~~~----------+-------------+
    | header | slot directory |      free space      | record heap |
    +--------+----------------+---------~~~----------+-------------+
    0        16               16+4*slots  heap_start   page_size

Header layout (16 bytes)::

    offset 0   u32  crc32 of bytes [4:page_size] (set on write-out)
    offset 4   u32  page id
    offset 8   u8   page kind (data / overflow / free)
    offset 9   u8   reserved
    offset 10  u16  slot count
    offset 12  u16  heap start (lowest used heap byte)
    offset 14  u16  reserved

Each slot directory entry is ``(offset u16, length u16)``. Offsets are
16-bit, which caps the page size at 64 KiB; records too large for a
page spill into a chain of overflow pages and the in-page record keeps
only a ``(first_page, total_len)`` reference.

Records carry an MVCC header so the store can patch a version's ``end``
CSN in place (8 bytes at a fixed offset) without rewriting the payload::

    row_id i64 | begin i64 | end i64 (-1 = infinity) | flags u8 | payload

The checksum is computed when a page is serialized for disk and verified
when one is read back; an in-memory page's crc field is stale by design.
"""

from __future__ import annotations

import json
import struct
import zlib

from repro.errors import PageCorruptError, StorageError

DEFAULT_PAGE_SIZE = 4096
MIN_PAGE_SIZE = 512
MAX_PAGE_SIZE = 65536

HEADER_SIZE = 16
SLOT_SIZE = 4

KIND_DATA = 0
KIND_OVERFLOW = 1
KIND_FREE = 2
_KINDS = (KIND_DATA, KIND_OVERFLOW, KIND_FREE)

_CRC = struct.Struct("<I")
_HEADER = struct.Struct("<IIBBHHH")
_SLOT = struct.Struct("<HH")

#: MVCC record header: row_id, begin, end (-1 = infinity), flags.
RECORD_HEADER = struct.Struct("<qqqB")
#: Byte offset of the ``end`` field inside a record (after row_id+begin).
RECORD_END_OFFSET = 16
#: Overflow reference payload: first overflow page id, total payload length.
OVERFLOW_REF = struct.Struct("<qI")

FLAG_INLINE = 0
FLAG_OVERFLOW = 1

#: Overflow page body: next page id (-1 = chain end) at 16, chunk length
#: at 24, chunk bytes from 28.
_OVERFLOW_BODY = struct.Struct("<qI")
OVERFLOW_DATA_START = HEADER_SIZE + _OVERFLOW_BODY.size

#: Free page body: next free page id (-1 = list end) at 16.
_FREE_NEXT = struct.Struct("<q")


def check_page_size(page_size: int) -> int:
    if not (MIN_PAGE_SIZE <= page_size <= MAX_PAGE_SIZE):
        raise StorageError(
            f"page size {page_size} outside [{MIN_PAGE_SIZE}, {MAX_PAGE_SIZE}]"
        )
    return page_size


def encode_values(values: tuple) -> bytes:
    """Serialize a row's values tuple. Column values are restricted to
    int/float/str/bool/None by the type system, so JSON is lossless
    (tuples round-trip as lists and are re-tupled on decode)."""
    return json.dumps(list(values), separators=(",", ":")).encode("utf-8")


def decode_values(payload: bytes) -> tuple:
    return tuple(json.loads(payload.decode("utf-8")))


def encode_record(
    row_id: int, begin: int, end: int | None, flags: int, payload: bytes
) -> bytes:
    enc_end = -1 if end is None else end
    return RECORD_HEADER.pack(row_id, begin, enc_end, flags) + payload


def decode_record(record: bytes | memoryview) -> tuple[int, int, int | None, int, bytes]:
    row_id, begin, enc_end, flags = RECORD_HEADER.unpack_from(record, 0)
    end = None if enc_end == -1 else enc_end
    return row_id, begin, end, flags, bytes(record[RECORD_HEADER.size :])


class Page:
    """One fixed-size page, backed by a mutable ``bytearray``."""

    __slots__ = ("page_id", "page_size", "data")

    def __init__(
        self,
        page_id: int,
        page_size: int = DEFAULT_PAGE_SIZE,
        kind: int = KIND_DATA,
        data: bytearray | None = None,
    ):
        self.page_id = page_id
        self.page_size = check_page_size(page_size)
        if data is not None:
            if len(data) != page_size:
                raise StorageError(
                    f"page {page_id}: buffer is {len(data)} bytes, "
                    f"expected {page_size}"
                )
            self.data = data
        else:
            self.data = bytearray(page_size)
            _HEADER.pack_into(self.data, 0, 0, page_id, kind, 0, 0, page_size, 0)

    # -- header fields ----------------------------------------------------

    @property
    def kind(self) -> int:
        return self.data[8]

    @property
    def slot_count(self) -> int:
        return struct.unpack_from("<H", self.data, 10)[0]

    @property
    def heap_start(self) -> int:
        return struct.unpack_from("<H", self.data, 12)[0]

    def _set_slot_count(self, n: int) -> None:
        struct.pack_into("<H", self.data, 10, n)

    def _set_heap_start(self, offset: int) -> None:
        struct.pack_into("<H", self.data, 12, offset)

    def free_space(self) -> int:
        """Contiguous bytes available for one more record + slot entry."""
        used_low = HEADER_SIZE + self.slot_count * SLOT_SIZE
        return max(0, self.heap_start - used_low - SLOT_SIZE)

    # -- slotted records --------------------------------------------------

    def insert_record(self, record: bytes) -> int | None:
        """Append ``record``; returns its slot index, or None if full."""
        length = len(record)
        if length > self.free_space():
            return None
        offset = self.heap_start - length
        self.data[offset : offset + length] = record
        slot = self.slot_count
        _SLOT.pack_into(self.data, HEADER_SIZE + slot * SLOT_SIZE, offset, length)
        self._set_slot_count(slot + 1)
        self._set_heap_start(offset)
        return slot

    def read_record(self, slot: int) -> memoryview:
        offset, length = self._slot(slot)
        return memoryview(self.data)[offset : offset + length]

    def patch_record(self, slot: int, record_offset: int, patch: bytes) -> None:
        """Overwrite ``len(patch)`` bytes at ``record_offset`` within a
        record — used to seal a version's ``end`` CSN in place."""
        offset, length = self._slot(slot)
        if record_offset + len(patch) > length:
            raise StorageError(
                f"page {self.page_id} slot {slot}: patch beyond record end"
            )
        start = offset + record_offset
        self.data[start : start + len(patch)] = patch

    def records(self):
        """Iterate ``(slot, memoryview)`` over every record in the page."""
        for slot in range(self.slot_count):
            yield slot, self.read_record(slot)

    def _slot(self, slot: int) -> tuple[int, int]:
        if not (0 <= slot < self.slot_count):
            raise StorageError(
                f"page {self.page_id}: slot {slot} out of range "
                f"(have {self.slot_count})"
            )
        return _SLOT.unpack_from(self.data, HEADER_SIZE + slot * SLOT_SIZE)

    # -- overflow pages ---------------------------------------------------

    @classmethod
    def overflow_capacity(cls, page_size: int) -> int:
        return page_size - OVERFLOW_DATA_START

    def set_overflow(self, next_page: int | None, chunk: bytes) -> None:
        if self.kind != KIND_OVERFLOW:
            raise StorageError(f"page {self.page_id} is not an overflow page")
        if len(chunk) > self.overflow_capacity(self.page_size):
            raise StorageError(
                f"page {self.page_id}: overflow chunk of {len(chunk)} bytes "
                f"exceeds capacity"
            )
        _OVERFLOW_BODY.pack_into(
            self.data, HEADER_SIZE, -1 if next_page is None else next_page, len(chunk)
        )
        self.data[OVERFLOW_DATA_START : OVERFLOW_DATA_START + len(chunk)] = chunk

    def overflow_next(self) -> int | None:
        """The next page id in the chain without copying the chunk —
        used by the recovery scan to trace chain reachability."""
        if self.kind != KIND_OVERFLOW:
            raise StorageError(f"page {self.page_id} is not an overflow page")
        next_page, _length = _OVERFLOW_BODY.unpack_from(self.data, HEADER_SIZE)
        return None if next_page == -1 else next_page

    def read_overflow(self) -> tuple[int | None, bytes]:
        if self.kind != KIND_OVERFLOW:
            raise StorageError(f"page {self.page_id} is not an overflow page")
        next_page, length = _OVERFLOW_BODY.unpack_from(self.data, HEADER_SIZE)
        chunk = bytes(self.data[OVERFLOW_DATA_START : OVERFLOW_DATA_START + length])
        return (None if next_page == -1 else next_page), chunk

    # -- free-list pages --------------------------------------------------

    def set_free_next(self, next_page: int | None) -> None:
        if self.kind != KIND_FREE:
            raise StorageError(f"page {self.page_id} is not a free page")
        _FREE_NEXT.pack_into(
            self.data, HEADER_SIZE, -1 if next_page is None else next_page
        )

    def free_next(self) -> int | None:
        if self.kind != KIND_FREE:
            raise StorageError(f"page {self.page_id} is not a free page")
        (next_page,) = _FREE_NEXT.unpack_from(self.data, HEADER_SIZE)
        return None if next_page == -1 else next_page

    # -- disk round trip --------------------------------------------------

    def to_disk(self) -> bytes:
        """Stamp the checksum and return the serialized page."""
        crc = zlib.crc32(memoryview(self.data)[4:]) & 0xFFFFFFFF
        _CRC.pack_into(self.data, 0, crc)
        return bytes(self.data)

    @classmethod
    def from_disk(cls, page_id: int, raw: bytes, page_size: int) -> "Page":
        if len(raw) != page_size:
            raise PageCorruptError(
                f"page {page_id}: short read ({len(raw)} of {page_size} bytes)"
            )
        stored = _CRC.unpack_from(raw, 0)[0]
        actual = zlib.crc32(memoryview(raw)[4:]) & 0xFFFFFFFF
        if stored != actual:
            raise PageCorruptError(
                f"page {page_id}: checksum mismatch "
                f"(stored {stored:#010x}, computed {actual:#010x})"
            )
        header_id = struct.unpack_from("<I", raw, 4)[0]
        if header_id != page_id:
            raise PageCorruptError(
                f"page {page_id}: header claims page id {header_id}"
            )
        kind = raw[8]
        if kind not in _KINDS:
            raise PageCorruptError(f"page {page_id}: unknown page kind {kind}")
        return cls(page_id, page_size, data=bytearray(raw))
