"""Page files: one on-disk file per table, plus the per-database manager.

File layout::

    +---------------+---------------+--------+--------+----
    | header slot 0 | header slot 1 | page 0 | page 1 | ...
    +---------------+---------------+--------+--------+----
    0               4096            8192     8192+ps

Header writes are made atomic by alternating between two fixed 4 KiB
slots: each write carries a monotonically increasing version counter and
a crc, and goes to slot ``version % 2``. Open picks the valid slot with
the highest version, so a crash mid-header-write at worst loses the
in-flight header and falls back to the previous one. The header slots
sit at fixed offsets (independent of the data page size) so the page
size itself can be recovered from the header.

The header records ``flushed_csn`` — every commit at or below it is
fully reflected in the data pages. Recovery opens the file, scans the
pages, and replays only the WAL tail above ``flushed_csn``. Pages
evicted from the buffer pool between checkpoints may push *newer* state
to disk than the header admits; replay is therefore reconciliation
(idempotent) rather than blind reapplication.

Freed pages are stamped ``KIND_FREE`` and chained through an intrusive
free list headed in the file header; allocation pops the list before
extending the file.
"""

from __future__ import annotations

import itertools
import json
import os
import struct
import urllib.parse
import zlib
from typing import Callable, Iterator

from repro.db.pages.page import (
    DEFAULT_PAGE_SIZE,
    KIND_FREE,
    Page,
    check_page_size,
)
from repro.errors import PageCorruptError, StorageError
from repro.faults import fault_point

#: Fixed size of each header slot; the data area starts after both.
HEADER_SLOT_SIZE = 4096
HEADER_AREA = 2 * HEADER_SLOT_SIZE

_MAGIC = b"RPG1"
#: magic 4s | crc u32 | version u64 | payload length u32
_HEADER_PREFIX = struct.Struct("<4sIQI")

PAGE_FILE_SUFFIX = ".pages"

_space_ids = itertools.count(1)


def _pack_header(version: int, payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if _HEADER_PREFIX.size + len(body) > HEADER_SLOT_SIZE:
        raise StorageError(f"page file header of {len(body)} bytes is too large")
    crc = zlib.crc32(struct.pack("<Q", version) + body) & 0xFFFFFFFF
    blob = _HEADER_PREFIX.pack(_MAGIC, crc, version, len(body)) + body
    return blob.ljust(HEADER_SLOT_SIZE, b"\x00")


def _unpack_header(raw: bytes) -> tuple[int, dict] | None:
    """Decode one header slot; None if the slot is empty or invalid."""
    if len(raw) < _HEADER_PREFIX.size:
        return None
    magic, crc, version, length = _HEADER_PREFIX.unpack_from(raw, 0)
    if magic != _MAGIC:
        return None
    body = raw[_HEADER_PREFIX.size : _HEADER_PREFIX.size + length]
    if len(body) != length:
        return None
    if zlib.crc32(struct.pack("<Q", version) + body) & 0xFFFFFFFF != crc:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except ValueError:
        return None
    if not isinstance(payload, dict):
        return None
    return version, payload


class PageFile:
    """One table's on-disk page file."""

    def __init__(
        self,
        path: str,
        page_size: int,
        *,
        fh,
        header_version: int,
        meta: dict,
        fsync: bool = False,
    ):
        self.path = path
        self.page_size = page_size
        self.fsync = fsync
        self._fh = fh
        self._header_version = header_version
        #: Durable header metadata (npages/free_head plus caller keys such
        #: as flushed_csn and next_row_id). In-memory npages/free_head may
        #: run ahead of the last durable header between checkpoints.
        self.meta = meta
        self.npages: int = meta.get("npages", 0)
        self._free_head: int | None = meta.get("free_head")
        #: Distinguishes this file from its successors after a vacuum
        #: rewrite — the buffer pool keys frames by (space_id, page_id).
        self.space_id = next(_space_ids)
        self.defunct = False
        #: Test hook invoked before every disk write with ("page"|"header",
        #: page_id_or_None); raising simulates a crash at that point.
        self.crash_hook: Callable[[str, int | None], None] | None = None
        self.stats = {
            "page_reads": 0,
            "page_writes": 0,
            "header_writes": 0,
            "allocations": 0,
            "frees": 0,
            "freelist_reuses": 0,
        }

    # -- lifecycle --------------------------------------------------------

    @classmethod
    def create(
        cls, path: str, page_size: int = DEFAULT_PAGE_SIZE, *, fsync: bool = False
    ) -> "PageFile":
        check_page_size(page_size)
        fh = open(path, "w+b")
        pf = cls(
            path,
            page_size,
            fh=fh,
            header_version=0,
            meta={"page_size": page_size, "npages": 0, "free_head": None},
            fsync=fsync,
        )
        pf.write_header()
        return pf

    @classmethod
    def open(cls, path: str, *, fsync: bool = False) -> "PageFile":
        fh = open(path, "r+b")
        try:
            fh.seek(0)
            slot0 = _unpack_header(fh.read(HEADER_SLOT_SIZE))
            fh.seek(HEADER_SLOT_SIZE)
            slot1 = _unpack_header(fh.read(HEADER_SLOT_SIZE))
        except OSError:
            fh.close()
            raise
        candidates = [s for s in (slot0, slot1) if s is not None]
        if not candidates:
            fh.close()
            raise PageCorruptError(f"{path}: no valid header slot")
        version, meta = max(candidates, key=lambda s: s[0])
        page_size = meta.get("page_size", DEFAULT_PAGE_SIZE)
        check_page_size(page_size)
        pf = cls(
            path, page_size, fh=fh, header_version=version, meta=meta, fsync=fsync
        )
        # The file may extend past the last durable header: pages
        # allocated and flushed after the final checkpoint are real data
        # (replay reconciles them), so trust the file size over the
        # header's page count.
        size = os.fstat(fh.fileno()).st_size
        if size > HEADER_AREA:
            by_size = (size - HEADER_AREA) // page_size
            if by_size > pf.npages:
                pf.npages = by_size
        return pf

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    # -- header -----------------------------------------------------------

    def write_header(self, **extra) -> None:
        """Durably record the file metadata (alternating-slot atomic)."""
        self.meta.update(extra)
        self.meta["page_size"] = self.page_size
        self.meta["npages"] = self.npages
        self.meta["free_head"] = self._free_head
        fault_point("page.header", table=self.meta.get("table"))
        if self.crash_hook is not None:
            self.crash_hook("header", None)
        self._header_version += 1
        blob = _pack_header(self._header_version, self.meta)
        self._fh.seek((self._header_version % 2) * HEADER_SLOT_SIZE)
        self._fh.write(blob)
        self.flush()
        self.stats["header_writes"] += 1

    # -- page I/O ---------------------------------------------------------

    def _offset(self, page_id: int) -> int:
        if page_id < 0:
            raise StorageError(f"{self.path}: negative page id {page_id}")
        return HEADER_AREA + page_id * self.page_size

    def read_page(self, page_id: int) -> Page:
        if page_id >= self.npages:
            raise StorageError(
                f"{self.path}: page {page_id} beyond allocated {self.npages}"
            )
        self._fh.seek(self._offset(page_id))
        raw = self._fh.read(self.page_size)
        self.stats["page_reads"] += 1
        return Page.from_disk(page_id, raw, self.page_size)

    def write_page(self, page: Page) -> None:
        fault_point(
            "page.write", table=self.meta.get("table"), page_id=page.page_id
        )
        if self.crash_hook is not None:
            self.crash_hook("page", page.page_id)
        self._fh.seek(self._offset(page.page_id))
        self._fh.write(page.to_disk())
        self.stats["page_writes"] += 1

    def flush(self) -> None:
        fault_point("page.fsync", table=self.meta.get("table"))
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    # -- allocation -------------------------------------------------------

    def allocate(self) -> int:
        """Reserve a page id, reusing the free list before extending."""
        self.stats["allocations"] += 1
        if self._free_head is not None:
            page_id = self._free_head
            free_page = self.read_page(page_id)
            if free_page.kind != KIND_FREE:
                raise PageCorruptError(
                    f"{self.path}: free list points at non-free page {page_id}"
                )
            self._free_head = free_page.free_next()
            self.stats["freelist_reuses"] += 1
            return page_id
        page_id = self.npages
        self.npages += 1
        return page_id

    def free(self, page_id: int) -> None:
        """Return a page to the free list (stamped on disk immediately)."""
        page = Page(page_id, self.page_size, kind=KIND_FREE)
        page.set_free_next(self._free_head)
        self.write_page(page)
        self._free_head = page_id
        self.stats["frees"] += 1

    @property
    def free_head(self) -> int | None:
        return self._free_head

    # -- recovery scan ----------------------------------------------------

    def scan_pages(self) -> Iterator[Page]:
        """Sequentially read every allocated page, skipping free pages and
        never-written holes. Bypasses the buffer pool (recovery path)."""
        size = os.fstat(self._fh.fileno()).st_size
        for page_id in range(self.npages):
            if self._offset(page_id) + self.page_size > size:
                break  # allocated but never flushed; WAL replay restores it
            self._fh.seek(self._offset(page_id))
            raw = self._fh.read(self.page_size)
            if not any(raw):
                continue  # hole from an out-of-order extension
            page = Page.from_disk(page_id, raw, self.page_size)
            if page.kind == KIND_FREE:
                continue
            self.stats["page_reads"] += 1
            yield page


def table_file_name(table_key: str) -> str:
    """Filesystem-safe file name for a (case-normalized) table key."""
    return urllib.parse.quote(table_key, safe="") + PAGE_FILE_SUFFIX


class PageFileManager:
    """Owns every page file under one data directory."""

    def __init__(
        self,
        data_dir: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        *,
        fsync: bool = False,
    ):
        self.data_dir = data_dir
        self.page_size = check_page_size(page_size)
        self.fsync = fsync
        os.makedirs(data_dir, exist_ok=True)
        self._files: dict[str, PageFile] = {}

    def _path(self, table_key: str) -> str:
        return os.path.join(self.data_dir, table_file_name(table_key))

    def create(self, table_key: str) -> PageFile:
        if table_key in self._files:
            raise StorageError(f"page file for {table_key!r} already open")
        path = self._path(table_key)
        if os.path.exists(path):
            raise StorageError(f"page file {path} already exists")
        pf = PageFile.create(path, self.page_size, fsync=self.fsync)
        self._files[table_key] = pf
        return pf

    def open(self, table_key: str) -> PageFile:
        if table_key in self._files:
            raise StorageError(f"page file for {table_key!r} already open")
        pf = PageFile.open(self._path(table_key), fsync=self.fsync)
        self._files[table_key] = pf
        return pf

    def get(self, table_key: str) -> PageFile:
        return self._files[table_key]

    def drop(self, table_key: str) -> None:
        pf = self._files.pop(table_key, None)
        if pf is not None:
            pf.defunct = True
            pf.close()
        path = self._path(table_key)
        if os.path.exists(path):
            os.remove(path)

    # -- vacuum rewrite ---------------------------------------------------

    def start_rewrite(self, table_key: str) -> PageFile:
        """A fresh page file the caller populates with compacted data."""
        return PageFile.create(
            self._path(table_key) + ".rewrite", self.page_size, fsync=self.fsync
        )

    def commit_rewrite(self, table_key: str, new_file: PageFile) -> None:
        """Atomically replace the table's file with the rewritten one.

        The old file object stays readable (POSIX keeps the unlinked
        inode alive while its descriptor is open), so version objects
        still pinned to it — long-running snapshot scans started before
        the vacuum — keep working; it is garbage collected with them.
        """
        old = self._files.pop(table_key, None)
        if old is not None:
            old.defunct = True
        new_file.flush()
        final_path = self._path(table_key)
        os.replace(new_file.path, final_path)
        new_file.path = final_path
        self._files[table_key] = new_file

    def abort_rewrite(self, new_file: PageFile) -> None:
        new_file.close()
        if os.path.exists(new_file.path):
            os.remove(new_file.path)

    # -- bookkeeping ------------------------------------------------------

    def files(self) -> list[PageFile]:
        return list(self._files.values())

    def stats(self) -> dict[str, int]:
        totals = {
            "page_reads": 0,
            "page_writes": 0,
            "header_writes": 0,
            "allocations": 0,
            "frees": 0,
            "freelist_reuses": 0,
            "pages_allocated": 0,
        }
        for pf in self._files.values():
            for key, value in pf.stats.items():
                totals[key] += value
            totals["pages_allocated"] += pf.npages
        totals["files"] = len(self._files)
        return totals

    def close_all(self) -> None:
        for pf in self._files.values():
            pf.close()
        self._files.clear()
