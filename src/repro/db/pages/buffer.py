"""Capacity-bounded LRU buffer pool.

Every page read or write in the paged storage tier goes through one
:class:`BufferPool` shared by all of a database's page files. Frames are
keyed by ``(space_id, page_id)`` — space ids are unique per
:class:`~repro.db.pages.file_manager.PageFile` instance, so a vacuum
rewrite (new file, new space id) can never alias frames of the file it
replaced.

Pinned frames are never evicted; callers pin for the duration of one
record read or write and release immediately, so pins are short and the
pool can be far smaller than the hot table. Evicting a dirty frame
writes the page back to its file first. That may push state *newer*
than the last durable checkpoint header to disk, which is safe: the
store only ever writes committed data, and recovery replays the WAL
tail with idempotent reconciliation, so disk state anywhere between
"checkpoint exactly" and "latest commit" recovers identically.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.db.pages.file_manager import PageFile
from repro.db.pages.page import Page
from repro.errors import BufferPoolError

DEFAULT_POOL_PAGES = 256


class Frame:
    """One cached page plus its pool bookkeeping."""

    __slots__ = ("page", "file", "pins", "dirty")

    def __init__(self, page: Page, file: PageFile):
        self.page = page
        self.file = file
        self.pins = 0
        self.dirty = False


class BufferPool:
    def __init__(self, capacity: int = DEFAULT_POOL_PAGES):
        if capacity < 1:
            raise BufferPoolError(f"buffer pool capacity {capacity} < 1")
        self.capacity = capacity
        #: (space_id, page_id) -> Frame, in LRU order (oldest first).
        self._frames: OrderedDict[tuple[int, int], Frame] = OrderedDict()
        #: The WAL rule: invoked once before any dirty write-back so the
        #: commits a page reflects are log-durable before the page is.
        #: Without it a group-commit crash could leave a *partial* commit
        #: on disk that tail replay cannot reconcile (its WAL record was
        #: still pending). The database wires this to ``wal.flush``.
        self.before_write: Callable[[], None] | None = None
        self.stats = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "writebacks": 0,
        }

    # -- fetch / create / release ----------------------------------------

    def fetch(self, file: PageFile, page_id: int) -> Frame:
        """Pin the frame for ``page_id``, reading it from disk on a miss."""
        key = (file.space_id, page_id)
        frame = self._frames.get(key)
        if frame is not None:
            self.stats["hits"] += 1
            self._frames.move_to_end(key)
            frame.pins += 1
            return frame
        self.stats["misses"] += 1
        page = file.read_page(page_id)
        frame = Frame(page, file)
        frame.pins = 1
        self._admit(key, frame)
        return frame

    def adopt(self, file: PageFile, page: Page, *, dirty: bool = True) -> Frame:
        """Admit a freshly created page without a disk read (pinned)."""
        key = (file.space_id, page.page_id)
        if key in self._frames:
            raise BufferPoolError(
                f"page {page.page_id} of space {file.space_id} already cached"
            )
        frame = Frame(page, file)
        frame.pins = 1
        frame.dirty = dirty
        self._admit(key, frame)
        return frame

    def release(self, frame: Frame, *, dirty: bool = False) -> None:
        if frame.pins <= 0:
            raise BufferPoolError(
                f"release of unpinned page {frame.page.page_id}"
            )
        frame.pins -= 1
        if dirty:
            frame.dirty = True

    # -- eviction ---------------------------------------------------------

    def _admit(self, key: tuple[int, int], frame: Frame) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[key] = frame

    def _evict_one(self) -> None:
        for key, frame in self._frames.items():
            if frame.pins == 0:
                break
        else:
            raise BufferPoolError(
                f"cannot evict: all {len(self._frames)} cached pages are pinned"
            )
        del self._frames[key]
        if frame.dirty and not frame.file.defunct:
            if self.before_write is not None:
                self.before_write()
            frame.file.write_page(frame.page)
            self.stats["writebacks"] += 1
        self.stats["evictions"] += 1

    # -- file-level operations -------------------------------------------

    def flush_file(self, file: PageFile) -> int:
        """Write back every dirty frame of ``file`` (frames stay cached)."""
        written = 0
        for (space_id, _pid), frame in self._frames.items():
            if space_id == file.space_id and frame.dirty:
                if written == 0 and self.before_write is not None:
                    self.before_write()
                file.write_page(frame.page)
                frame.dirty = False
                written += 1
        if written:
            self.stats["writebacks"] += written
        return written

    def flush_all(self) -> int:
        written = 0
        for frame in self._frames.values():
            if frame.dirty and not frame.file.defunct:
                if written == 0 and self.before_write is not None:
                    self.before_write()
                frame.file.write_page(frame.page)
                frame.dirty = False
                written += 1
        if written:
            self.stats["writebacks"] += written
        return written

    def drop_file(self, file: PageFile) -> None:
        """Discard every frame of ``file`` without writing back (the file
        is being deleted or replaced)."""
        doomed = [
            key for key in self._frames if key[0] == file.space_id
        ]
        for key in doomed:
            frame = self._frames[key]
            if frame.pins:
                raise BufferPoolError(
                    f"drop_file: page {key[1]} of space {key[0]} is pinned"
                )
            del self._frames[key]

    # -- stats ------------------------------------------------------------

    def cached_pages(self) -> int:
        return len(self._frames)

    def snapshot_stats(self) -> dict[str, int]:
        pinned = sum(1 for f in self._frames.values() if f.pins)
        dirty = sum(1 for f in self._frames.values() if f.dirty)
        return {
            **self.stats,
            "capacity": self.capacity,
            "cached": len(self._frames),
            "pinned": pinned,
            "dirty": dirty,
        }
