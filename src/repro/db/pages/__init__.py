"""Durable paged storage tier: slotted pages, page files, buffer pool.

Opt in via ``Database(storage="paged", data_dir=...)`` (or the
``REPRO_STORAGE=paged`` environment knob); see ``docs/storage.md``.
"""

from repro.db.pages.buffer import DEFAULT_POOL_PAGES, BufferPool, Frame
from repro.db.pages.file_manager import (
    PAGE_FILE_SUFFIX,
    PageFile,
    PageFileManager,
    table_file_name,
)
from repro.db.pages.page import DEFAULT_PAGE_SIZE, Page
from repro.db.pages.store import PagedTableStore, PagedVersion

__all__ = [
    "BufferPool",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_POOL_PAGES",
    "Frame",
    "PAGE_FILE_SUFFIX",
    "Page",
    "PageFile",
    "PageFileManager",
    "PagedTableStore",
    "PagedVersion",
    "table_file_name",
]
