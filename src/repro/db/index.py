"""Secondary indexes over the latest committed state of a table.

Two index kinds are provided: :class:`HashIndex` for equality lookups and
:class:`SortedIndex` for range scans. Indexes track only the *live* version
of each row; historical reads (time travel) always go through the version
store. The transaction manager keeps indexes in sync by calling the
``on_*`` hooks as it applies a commit, and uses unique indexes to enforce
PRIMARY KEY / UNIQUE constraints at commit time.
"""

from __future__ import annotations

import bisect
from typing import Iterable

from repro.db.schema import TableSchema
from repro.db.types import row_sort_key
from repro.errors import IntegrityError, SchemaError

#: Shared empty result for missing keys; frozen so a probe that holds it
#: cannot accidentally grow a phantom bucket.
_EMPTY_IDS: frozenset[int] = frozenset()


class HashIndex:
    """Equality index mapping a column-tuple key to a set of row ids."""

    def __init__(self, name: str, schema: TableSchema, columns: Iterable[str], unique: bool = False):
        self.name = name
        self.schema = schema
        self.columns = tuple(schema.column(c).name for c in columns)
        self._positions = tuple(schema.index_of(c) for c in self.columns)
        self.unique = unique
        self._map: dict[tuple, set[int]] = {}

    def key_of(self, values: tuple) -> tuple:
        return tuple(values[i] for i in self._positions)

    def add(self, row_id: int, values: tuple) -> None:
        key = self.key_of(values)
        bucket = self._map.setdefault(key, set())
        if self.unique and bucket and row_id not in bucket and None not in key:
            raise IntegrityError(
                f"unique violation on {self.schema.name}({', '.join(self.columns)}): "
                f"key {key!r}"
            )
        bucket.add(row_id)

    def remove(self, row_id: int, values: tuple) -> None:
        key = self.key_of(values)
        bucket = self._map.get(key)
        if bucket:
            bucket.discard(row_id)
            if not bucket:
                del self._map[key]

    def lookup(self, key: tuple) -> set[int] | frozenset[int]:
        """Row ids for ``key``.

        Returns a *live view* of the bucket (or a shared frozen empty set)
        so the hot probe path allocates nothing; callers must treat the
        result as read-only and copy before mutating.
        """
        return self._map.get(tuple(key), _EMPTY_IDS)

    def would_violate(self, values: tuple, ignore_row_id: int | None = None) -> bool:
        """Whether inserting ``values`` would break uniqueness."""
        if not self.unique:
            return False
        key = self.key_of(values)
        if None in key:
            return False
        bucket = self._map.get(key)
        if not bucket:
            return False
        return any(rid != ignore_row_id for rid in bucket)

    def __len__(self) -> int:
        return sum(len(b) for b in self._map.values())


class SortedIndex:
    """Ordered index supporting range scans over a column tuple."""

    def __init__(self, name: str, schema: TableSchema, columns: Iterable[str]):
        self.name = name
        self.schema = schema
        self.columns = tuple(schema.column(c).name for c in columns)
        self._positions = tuple(schema.index_of(c) for c in self.columns)
        # Entries are (sort_key, row_id); sort_key wraps values in SortKey
        # so NULLs and mixed types order deterministically.
        self._entries: list[tuple[tuple, int]] = []

    def key_of(self, values: tuple) -> tuple:
        return row_sort_key(tuple(values[i] for i in self._positions))

    def add(self, row_id: int, values: tuple) -> None:
        bisect.insort(self._entries, (self.key_of(values), row_id))

    def remove(self, row_id: int, values: tuple) -> None:
        key = self.key_of(values)
        lo = bisect.bisect_left(self._entries, (key, row_id))
        if lo < len(self._entries) and self._entries[lo] == (key, row_id):
            self._entries.pop(lo)

    def scan_between(self, low: tuple | None, high: tuple | None) -> list[int]:
        """Row ids with low <= key <= high (either bound may be None)."""
        out = []
        low_key = row_sort_key(tuple(low)) if low is not None else None
        high_key = row_sort_key(tuple(high)) if high is not None else None
        for sort_key, row_id in self._entries:
            if low_key is not None and sort_key < low_key:
                continue
            if high_key is not None and sort_key > high_key:
                break
            out.append(row_id)
        return out

    def __len__(self) -> int:
        return len(self._entries)


class IndexSet:
    """All indexes of one table, with constraint enforcement helpers."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.indexes: dict[str, HashIndex | SortedIndex] = {}
        # One unique hash index per declared unique constraint. These
        # back commit-time enforcement and cannot be dropped.
        self._constraint_indexes: set[str] = set()
        for i, constraint in enumerate(schema.unique_constraints):
            name = f"uq_{schema.name}_{i}_{'_'.join(constraint)}".lower()
            self.indexes[name] = HashIndex(name, schema, constraint, unique=True)
            self._constraint_indexes.add(name)

    def create_hash_index(self, name: str, columns: Iterable[str], unique: bool = False) -> HashIndex:
        if name.lower() in self.indexes:
            raise SchemaError(f"index {name!r} already exists")
        index = HashIndex(name, self.schema, columns, unique=unique)
        self.indexes[name.lower()] = index
        return index

    def create_sorted_index(self, name: str, columns: Iterable[str]) -> SortedIndex:
        if name.lower() in self.indexes:
            raise SchemaError(f"index {name!r} already exists")
        index = SortedIndex(name, self.schema, columns)
        self.indexes[name.lower()] = index
        return index

    def drop_index(self, name: str, if_exists: bool = False) -> None:
        if name.lower() not in self.indexes:
            if if_exists:
                return
            raise SchemaError(f"no index {name!r} on {self.schema.name}")
        if name.lower() in self._constraint_indexes:
            raise SchemaError(
                f"index {name!r} backs a UNIQUE constraint on "
                f"{self.schema.name} and cannot be dropped"
            )
        del self.indexes[name.lower()]

    def populate(self, rows: Iterable[tuple[int, tuple]]) -> None:
        for row_id, values in rows:
            self.on_insert(row_id, values)

    # -- maintenance hooks (called while a commit applies) ---------------

    def on_insert(self, row_id: int, values: tuple) -> None:
        for index in self.indexes.values():
            index.add(row_id, values)

    def on_update(self, row_id: int, old_values: tuple, new_values: tuple) -> None:
        for index in self.indexes.values():
            index.remove(row_id, old_values)
            index.add(row_id, new_values)

    def on_delete(self, row_id: int, values: tuple) -> None:
        for index in self.indexes.values():
            index.remove(row_id, values)

    # -- constraint checks ------------------------------------------------

    def check_insert(self, values: tuple, ignore_row_id: int | None = None) -> None:
        """Raise :class:`IntegrityError` if ``values`` breaks a unique index."""
        for index in self.indexes.values():
            if isinstance(index, HashIndex) and index.would_violate(values, ignore_row_id):
                raise IntegrityError(
                    f"unique violation on {self.schema.name}"
                    f"({', '.join(index.columns)}): key {index.key_of(values)!r}"
                )

    def equality_index_for(self, columns: set[str]) -> HashIndex | None:
        """A hash index whose column set is covered by ``columns``, if any."""
        lowered = {c.lower() for c in columns}
        best: HashIndex | None = None
        for index in self.indexes.values():
            if not isinstance(index, HashIndex):
                continue
            if {c.lower() for c in index.columns} <= lowered:
                if best is None or len(index.columns) > len(best.columns):
                    best = index
        return best
