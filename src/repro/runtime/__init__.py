"""DBOS-style deterministic serverless runtime (paper principle P3).

Request handlers are plain Python functions taking a
:class:`RequestContext`; the :class:`Runtime` executes them either
sequentially (:meth:`Runtime.submit`) or concurrently under a
:class:`CooperativeScheduler` whose schedule pins the transaction commit
order (:meth:`Runtime.run_concurrent`).
"""

from repro.runtime.clock import LogicalClock
from repro.runtime.context import RequestContext, SideEffect, TxnHandle
from repro.runtime.handlers import HandlerRegistry, handler
from repro.runtime.scheduler import (
    CheckpointKind,
    CooperativeScheduler,
    ScheduleEntry,
    TaskOutcome,
)
from repro.runtime.workflow import Request, RequestResult, Runtime

__all__ = [
    "CheckpointKind",
    "CooperativeScheduler",
    "HandlerRegistry",
    "LogicalClock",
    "Request",
    "RequestContext",
    "RequestResult",
    "Runtime",
    "ScheduleEntry",
    "SideEffect",
    "TaskOutcome",
    "TxnHandle",
    "handler",
]
