"""Handler registry.

A handler is a function ``fn(ctx, *args, **kwargs)`` registered under a
name. Retroactive programming (§3.6) works by re-executing past requests
against a *patched* registry — :meth:`HandlerRegistry.patched` builds one
without mutating the production registry.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import UnknownHandlerError

HandlerFn = Callable[..., Any]


class HandlerRegistry:
    """Named request handlers (case-sensitive, like route names)."""

    def __init__(self):
        self._handlers: dict[str, HandlerFn] = {}

    def register(self, name: str, fn: HandlerFn) -> HandlerFn:
        if not name:
            raise UnknownHandlerError("handler name must be non-empty")
        self._handlers[name] = fn
        return fn

    def handler(self, name: str) -> Callable[[HandlerFn], HandlerFn]:
        """Decorator form of :meth:`register`."""

        def decorate(fn: HandlerFn) -> HandlerFn:
            return self.register(name, fn)

        return decorate

    def get(self, name: str) -> HandlerFn:
        try:
            return self._handlers[name]
        except KeyError:
            raise UnknownHandlerError(
                f"no handler registered under {name!r} "
                f"(known: {sorted(self._handlers)})"
            ) from None

    def has(self, name: str) -> bool:
        return name in self._handlers

    def names(self) -> list[str]:
        return sorted(self._handlers)

    def patched(self, **overrides: HandlerFn) -> "HandlerRegistry":
        """A copy of this registry with some handlers replaced.

        This is the "modified code" a developer hands to retroactive
        programming; the original registry is untouched.
        """
        copy = HandlerRegistry()
        copy._handlers = dict(self._handlers)
        for name, fn in overrides.items():
            copy._handlers[name] = fn
        return copy

    def __iter__(self) -> Iterator[tuple[str, HandlerFn]]:
        return iter(self._handlers.items())

    def __len__(self) -> int:
        return len(self._handlers)


#: Module-level default registry, for the decorator-only usage pattern.
_default_registry = HandlerRegistry()


def handler(name: str) -> Callable[[HandlerFn], HandlerFn]:
    """Register on the module-level default registry."""
    return _default_registry.handler(name)


def default_registry() -> HandlerRegistry:
    return _default_registry
