"""Deterministic logical clock.

Handlers must be deterministic (P3), so the runtime never exposes wall
time to application code; timestamps are logical ticks assigned in
execution order. Because the cooperative scheduler serializes execution,
tick order — and therefore every traced timestamp — is a pure function of
the schedule, which is what makes replayed traces comparable.
"""

from __future__ import annotations


class LogicalClock:
    """Monotonic integer clock; tick() returns 1, 2, 3, ..."""

    def __init__(self, start: int = 0):
        self._now = start

    def tick(self) -> int:
        self._now += 1
        return self._now

    def now(self) -> int:
        return self._now

    def advance_to(self, value: int) -> None:
        """Move forward to at least ``value`` (never backwards)."""
        if value > self._now:
            self._now = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LogicalClock({self._now})"


def format_ts(ts: int) -> str:
    """Render a logical timestamp the way the paper's tables do ("TS4")."""
    return f"TS{ts}"
