"""Cooperative deterministic scheduler.

Concurrent requests run in real threads, but a baton protocol admits
exactly one at a time: a worker runs until it reaches a *checkpoint*
(before a transaction begins, before a statement when statement
granularity is enabled, or on a lock wait), then hands the baton back.
Which worker runs next is decided by an explicit schedule — a list of
worker indices — or by a seeded RNG. The result is fully deterministic
interleaving: with SERIALIZABLE isolation and transaction granularity,
**schedule entry k is the k-th transaction to commit**, which is exactly
the handle TROD's retroactive engine needs to enumerate orderings (§3.6).

Workers begin by auto-advancing (in index order) to their first
transaction boundary; under TROD's principles the code before the first
transaction touches no shared state, so this prelude cannot race.
"""

from __future__ import annotations

import enum
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import SchedulerError


class CheckpointKind(enum.Enum):
    START = "START"
    TXN_BEGIN = "TXN_BEGIN"
    STATEMENT = "STATEMENT"
    SCAN_BATCH = "SCAN_BATCH"
    LOCK_WAIT = "LOCK_WAIT"
    DONE = "DONE"


@dataclass
class ScheduleEntry:
    """One realized scheduling decision.

    ``kind`` is the checkpoint the worker was parked at when granted —
    i.e. what this grant *executed*: a grant at ``TXN_BEGIN`` ran that
    worker's pending transaction.
    """

    step: int
    worker: int
    kind: CheckpointKind
    label: str = ""


@dataclass
class TaskOutcome:
    """Terminal state of one scheduled task."""

    index: int
    result: Any = None
    error: BaseException | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class _WorkerState(enum.Enum):
    NEW = "NEW"
    WAITING_TURN = "WAITING_TURN"
    RUNNING = "RUNNING"
    WAITING_LOCK = "WAITING_LOCK"
    DONE = "DONE"


class _Baton(object):
    """One-shot handoff signal, rebuilt around a pre-acquired lock.

    The baton protocol alternates strictly — every ``signal`` is consumed
    by exactly one ``wait`` before the next ``signal`` — so the general
    machinery of :class:`threading.Event` (broadcast wakeups, explicit
    ``clear``) is pure overhead. A bare lock handoff round-trips in a
    fraction of the time, which matters because batch-granularity
    scheduling pays two handoffs per scan batch.
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._lock.acquire()  # created unsignalled

    def signal(self) -> None:
        try:
            self._lock.release()
        except RuntimeError:
            pass  # already signalled (abort racing a normal handoff)

    def wait(self) -> None:
        self._lock.acquire()


_current = threading.local()


def current_scheduler() -> "CooperativeScheduler | None":
    """The scheduler driving this thread, if any (set by the scheduler)."""
    return getattr(_current, "scheduler", None)


def maybe_checkpoint(kind: CheckpointKind, label: str = "") -> None:
    """Yield to the scheduler if this thread is a scheduled worker."""
    scheduler = current_scheduler()
    if scheduler is not None:
        scheduler.checkpoint(kind, label)


class _Worker:
    def __init__(self, index: int, thunk: Callable[[], Any]):
        self.index = index
        self.thunk = thunk
        self.state = _WorkerState.NEW
        self.turn = _Baton()
        self.yielded = _Baton()
        self.outcome = TaskOutcome(index=index)
        self.last_kind = CheckpointKind.START
        self.last_label = ""
        self.thread: threading.Thread | None = None


class CooperativeScheduler:
    """Runs tasks with deterministic, controllable interleaving."""

    def __init__(
        self,
        schedule: Sequence[int] | None = None,
        seed: int | None = None,
        granularity: str = "txn",
        strict: bool = False,
    ):
        """``schedule`` pins decisions; otherwise ``seed`` drives choices.

        ``granularity`` is 'txn' (yield before each transaction),
        'statement' (also yield before each statement inside one), or
        'batch' (additionally yield every scan batch — long scans then
        interleave with other workers at deterministic row-batch
        boundaries instead of running head-of-line).
        ``strict`` makes a schedule entry naming a finished/absent worker
        an error instead of a skip.
        """
        if granularity not in ("txn", "statement", "batch"):
            raise SchedulerError(f"unknown granularity {granularity!r}")
        self.schedule = list(schedule) if schedule is not None else None
        self.seed = seed
        self.granularity = granularity
        self.strict = strict
        self.record: list[ScheduleEntry] = []
        self._workers: list[_Worker] = []
        self._aborting = False
        self._step = 0

    # -- worker-side API ------------------------------------------------------

    def checkpoint(self, kind: CheckpointKind, label: str = "") -> None:
        worker: _Worker | None = getattr(_current, "worker", None)
        if worker is None:  # not a scheduled thread
            return
        if kind is CheckpointKind.STATEMENT and self.granularity == "txn":
            return
        if kind is CheckpointKind.SCAN_BATCH and self.granularity != "batch":
            return
        if self._aborting:
            raise SchedulerError("scheduler aborted")
        worker.last_kind = kind
        worker.last_label = label
        worker.state = (
            _WorkerState.WAITING_LOCK
            if kind is CheckpointKind.LOCK_WAIT
            else _WorkerState.WAITING_TURN
        )
        worker.yielded.signal()
        worker.turn.wait()
        if self._aborting:
            raise SchedulerError("scheduler aborted")
        worker.state = _WorkerState.RUNNING

    def lock_wait(self) -> None:
        """Entry point for the transaction manager's wait hook."""
        self.checkpoint(CheckpointKind.LOCK_WAIT)

    # -- scheduler-side -----------------------------------------------------------

    def run(self, thunks: Sequence[Callable[[], Any]]) -> list[TaskOutcome]:
        """Execute ``thunks`` to completion under the configured policy."""
        if not thunks:
            return []
        self._workers = [_Worker(i, thunk) for i, thunk in enumerate(thunks)]
        for worker in self._workers:
            worker.thread = threading.Thread(
                target=self._worker_main, args=(worker,), daemon=True
            )
            worker.thread.start()
        try:
            # Deterministic prelude: let each worker reach its first
            # transaction boundary (or finish) in index order.
            for worker in self._workers:
                self._grant(worker, prelude=True)
            self._drive()
        except BaseException:
            self._abort_workers()
            raise
        return [w.outcome for w in self._workers]

    def _worker_main(self, worker: _Worker) -> None:
        _current.scheduler = self
        _current.worker = worker
        worker.turn.wait()  # initial grant from the prelude
        worker.state = _WorkerState.RUNNING
        try:
            worker.outcome.result = worker.thunk()
        except BaseException as exc:  # noqa: BLE001 - reported via outcome
            worker.outcome.error = exc
        finally:
            worker.state = _WorkerState.DONE
            worker.last_kind = CheckpointKind.DONE
            worker.yielded.signal()

    def _grant(self, worker: _Worker, prelude: bool = False) -> None:
        """Give ``worker`` the baton and wait for it to yield or finish."""
        if worker.state is _WorkerState.DONE:
            return
        kind_before = worker.last_kind
        label_before = worker.last_label
        worker.turn.signal()
        worker.yielded.wait()
        self._step += 1
        self.record.append(
            ScheduleEntry(
                step=self._step,
                worker=worker.index,
                kind=kind_before,
                label=label_before,
            )
        )

    def _runnable(self) -> list[_Worker]:
        """Grantable workers; lock-waiters last so drains make progress."""
        ready = [w for w in self._workers if w.state is _WorkerState.WAITING_TURN]
        blocked = [w for w in self._workers if w.state is _WorkerState.WAITING_LOCK]
        return ready + blocked

    def _drive(self) -> None:
        rng = random.Random(self.seed if self.seed is not None else 0)
        explicit = list(self.schedule) if self.schedule is not None else []
        position = 0
        while True:
            runnable = self._runnable()
            if not runnable:
                if all(w.state is _WorkerState.DONE for w in self._workers):
                    return
                # Workers still starting up; give them a moment to park.
                # Poll state rather than waiting on the baton — a baton
                # signal must only ever be consumed by ``_grant``.
                deadline = time.monotonic() + 5.0
                while (
                    any(w.state is _WorkerState.NEW for w in self._workers)
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.001)
                runnable = self._runnable()
                if not runnable:
                    if all(w.state is _WorkerState.DONE for w in self._workers):
                        return
                    raise SchedulerError("no runnable workers (stuck?)")
            if position < len(explicit):
                index = explicit[position]
                position += 1
                worker = self._worker_by_index(index)
                if worker is None or worker.state is _WorkerState.DONE:
                    if self.strict:
                        raise SchedulerError(
                            f"schedule entry {position - 1} names worker "
                            f"{index}, which is finished or absent"
                        )
                    continue
            elif self.schedule is not None:
                # Explicit schedule exhausted: drain deterministically in
                # index order.
                worker = runnable[0]
            else:
                worker = rng.choice(runnable)
            self._grant(worker)

    def _worker_by_index(self, index: int) -> _Worker | None:
        if 0 <= index < len(self._workers):
            return self._workers[index]
        return None

    def _abort_workers(self) -> None:
        self._aborting = True
        for worker in self._workers:
            worker.turn.signal()
        for worker in self._workers:
            if worker.thread is not None:
                worker.thread.join(timeout=2.0)

    # -- introspection --------------------------------------------------------------

    def realized_txn_order(self) -> list[int]:
        """Worker indices in the order their transactions were granted.

        With transaction granularity, entry k of this list is the worker
        whose k-th-committed transaction ran — the canonical "ordering"
        object that retroactive programming enumerates.
        """
        return [
            entry.worker
            for entry in self.record
            if entry.kind is CheckpointKind.TXN_BEGIN
        ]
