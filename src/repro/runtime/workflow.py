"""The runtime: request execution, workflows, and concurrency control.

A :class:`Runtime` binds a handler registry to a database. Requests run
either one at a time (:meth:`submit`) or as a concurrent batch under a
cooperative scheduler (:meth:`run_concurrent`) whose schedule pins the
transaction interleaving — the mechanism by which this reproduction makes
the paper's race conditions (and their retroactive re-executions)
deterministic.

TROD attaches through ``runtime.hooks`` (request/handler/side-effect
events) and through the database's observer list (transaction/statement
events); the runtime works identically with no hooks attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.db.database import Database
from repro.db.txn.manager import IsolationLevel, Transaction
from repro.errors import HandlerError
from repro.runtime.clock import LogicalClock
from repro.runtime.context import RequestContext, SideEffect
from repro.runtime.handlers import HandlerRegistry
from repro.runtime.scheduler import CooperativeScheduler


@dataclass
class Request:
    """A request to execute: handler name plus arguments."""

    handler: str
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    req_id: str | None = None
    auth_user: str | None = None


@dataclass
class RequestResult:
    """Terminal state of one request."""

    req_id: str
    handler: str
    output: Any = None
    error: str | None = None
    exception: BaseException | None = None
    start_ts: int = 0
    end_ts: int = 0
    txn_names: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None


class Runtime:
    """Executes registered handlers against a database."""

    def __init__(
        self,
        database: Database,
        registry: HandlerRegistry | None = None,
        clock: LogicalClock | None = None,
        seed: int = 0,
        isolation: IsolationLevel = IsolationLevel.SERIALIZABLE,
    ):
        self.database = database
        self.registry = registry or HandlerRegistry()
        self.clock = clock or LogicalClock()
        self.seed = seed
        self.isolation = isolation
        #: TROD's runtime-side interposition points.
        self.hooks: list[Any] = []
        self.side_effects: list[SideEffect] = []
        self._req_counter = 0
        #: The scheduler of the most recent run_concurrent (kept after the
        #: run so callers can inspect the realized schedule).
        self.last_scheduler: CooperativeScheduler | None = None

    # -- registration ----------------------------------------------------------

    def register(self, name: str, fn: Callable[..., Any]) -> None:
        self.registry.register(name, fn)

    def next_req_id(self) -> str:
        self._req_counter += 1
        return f"R{self._req_counter}"

    # -- hooks ---------------------------------------------------------------------

    def add_hook(self, hook: Any) -> None:
        self.hooks.append(hook)

    def remove_hook(self, hook: Any) -> None:
        try:
            self.hooks.remove(hook)
        except ValueError:
            pass

    def _notify(self, event: str, *args: Any) -> None:
        for hook in self.hooks:
            fn = getattr(hook, event, None)
            if fn is not None:
                fn(*args)

    # -- transaction plumbing (called by RequestContext) -----------------------------

    def begin_transaction(
        self,
        ctx: RequestContext,
        label: str | None,
        isolation: IsolationLevel | None,
    ) -> Transaction:
        txn = self.database.begin(
            isolation=isolation or self.isolation,
            info={
                "req_id": ctx.req_id,
                "handler": ctx.handler_name,
                "label": label or "",
                "auth_user": ctx.auth_user,
            },
        )
        ctx.txn_names.append(txn.name)
        return txn

    def record_side_effect(self, ctx: RequestContext, effect: SideEffect) -> None:
        self.side_effects.append(effect)
        self._notify("side_effect", ctx, effect)

    # -- execution ----------------------------------------------------------------------

    def submit(
        self,
        handler: str,
        *args: Any,
        req_id: str | None = None,
        auth_user: str | None = None,
        **kwargs: Any,
    ) -> RequestResult:
        """Run one request to completion (no concurrency)."""
        request = Request(
            handler=handler,
            args=args,
            kwargs=kwargs,
            req_id=req_id,
            auth_user=auth_user,
        )
        return self.execute_request(request)

    def execute_request(self, request: Request) -> RequestResult:
        req_id = request.req_id or self.next_req_id()
        ctx = RequestContext(
            runtime=self,
            req_id=req_id,
            handler_name=request.handler,
            auth_user=request.auth_user,
        )
        result = RequestResult(
            req_id=req_id, handler=request.handler, start_ts=self.clock.tick()
        )
        result.txn_names = ctx.txn_names
        self._notify("request_started", ctx, request)
        try:
            fn = self.registry.get(request.handler)
            result.output = fn(ctx, *request.args, **request.kwargs)
        except Exception as exc:  # noqa: BLE001 - reported in the result
            result.error = f"{type(exc).__name__}: {exc}"
            result.exception = exc
        result.end_ts = self.clock.tick()
        self._notify("request_finished", ctx, result)
        return result

    def invoke_child(
        self,
        parent: RequestContext,
        handler_name: str,
        args: tuple,
        kwargs: dict[str, Any],
    ) -> Any:
        """RPC: run ``handler_name`` inline, propagating the request id."""
        fn = self.registry.get(handler_name)
        child = RequestContext(
            runtime=self,
            req_id=parent.req_id,
            handler_name=handler_name,
            auth_user=parent.auth_user,
            parent=parent,
        )
        self._notify("handler_called", parent, child)
        try:
            output = fn(child, *args, **kwargs)
        except Exception as exc:
            self._notify("handler_failed", child, exc)
            raise HandlerError(handler_name, parent.req_id, exc) from exc
        self._notify("handler_returned", child, output)
        return output

    def run_concurrent(
        self,
        requests: Sequence[Request],
        schedule: Sequence[int] | None = None,
        seed: int | None = None,
        granularity: str = "txn",
    ) -> list[RequestResult]:
        """Execute ``requests`` concurrently under a controlled schedule.

        ``schedule`` is a list of request indices; with the default
        transaction granularity, entry k names the request whose next
        transaction commits k-th. Omitting it interleaves pseudo-randomly
        but reproducibly from ``seed``.
        """
        # Assign request ids up front, in list order, so they are stable
        # regardless of the schedule.
        for request in requests:
            if request.req_id is None:
                request.req_id = self.next_req_id()
        scheduler = CooperativeScheduler(
            schedule=schedule, seed=seed, granularity=granularity
        )
        self.last_scheduler = scheduler
        previous_hook = self.database.txn_manager.wait_hook
        self.database.txn_manager.wait_hook = lambda txn, resource: scheduler.lock_wait()
        try:
            thunks = [
                (lambda req=request: self.execute_request(req)) for request in requests
            ]
            outcomes = scheduler.run(thunks)
        finally:
            self.database.txn_manager.wait_hook = previous_hook
        results: list[RequestResult] = []
        for request, outcome in zip(requests, outcomes):
            if outcome.error is not None:
                # Infrastructure failure (handler errors are captured in
                # the RequestResult); surface it.
                raise outcome.error
            results.append(outcome.result)
        return results

    def realized_txn_order(self) -> list[int]:
        """Request indices in committed-transaction order (last run)."""
        if self.last_scheduler is None:
            return []
        return self.last_scheduler.realized_txn_order()
