"""Request context: the API application handlers program against.

The context enforces the paper's principles by construction:

* P1/P2 — shared state is only reachable through ``ctx.txn()``, which
  yields a transaction-scoped handle;
* P3 — randomness (``ctx.rng``) is seeded from the request id and time
  (``ctx.now()``) is the logical clock, so a handler's behaviour is a
  function of its inputs and the database state alone.

External side effects go through ``ctx.emit`` and are recorded (and
assumed idempotent, per §3.1's simplifying assumption) rather than
performed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.db.result import ResultSet
from repro.db.txn.manager import IsolationLevel, Transaction
from repro.errors import AppRuntimeError
from repro.runtime.scheduler import CheckpointKind, maybe_checkpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.workflow import Runtime


@dataclass(frozen=True)
class SideEffect:
    """An external call a handler asked for (email, webhook, ...)."""

    req_id: str
    handler: str
    channel: str
    payload: Any
    ts: int


class TxnHandle:
    """Statement executor scoped to one open transaction."""

    def __init__(self, ctx: "RequestContext", txn: Transaction):
        self._ctx = ctx
        self.txn = txn

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        maybe_checkpoint(CheckpointKind.STATEMENT, sql[:40])
        return self._ctx.database.execute(sql, params, txn=self.txn)

    @property
    def name(self) -> str:
        return self.txn.name


class _TxnContextManager:
    def __init__(self, ctx: "RequestContext", label: str | None, isolation):
        self._ctx = ctx
        self._label = label
        self._isolation = isolation
        self._handle: TxnHandle | None = None

    def __enter__(self) -> TxnHandle:
        ctx = self._ctx
        maybe_checkpoint(CheckpointKind.TXN_BEGIN, self._label or "")
        txn = ctx.runtime.begin_transaction(ctx, self._label, self._isolation)
        self._handle = TxnHandle(ctx, txn)
        return self._handle

    def __exit__(self, exc_type, exc, tb) -> bool:
        txn = self._handle.txn
        if exc_type is None:
            txn.commit()
        else:
            txn.abort()
        return False


class RequestContext:
    """Per-request execution context handed to every handler."""

    def __init__(
        self,
        runtime: "Runtime",
        req_id: str,
        handler_name: str,
        auth_user: str | None = None,
        parent: "RequestContext | None" = None,
    ):
        self.runtime = runtime
        self.req_id = req_id
        self.handler_name = handler_name
        self.auth_user = auth_user
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        if parent is None:
            # Deterministic per-request randomness (P3): the seed is a
            # pure function of the runtime seed and the request id.
            self.rng = random.Random(f"{runtime.seed}:{req_id}")
        else:
            self.rng = parent.rng
        self.txn_names: list[str] = [] if parent is None else parent.txn_names

    # -- database access ----------------------------------------------------

    @property
    def database(self):
        return self.runtime.database

    def txn(
        self,
        label: str | None = None,
        isolation: IsolationLevel | None = None,
    ) -> _TxnContextManager:
        """Open a transaction: ``with ctx.txn(label='check') as t: ...``

        ``label`` becomes the ``func:<label>`` metadata in TROD's
        Invocations table (Table 1 of the paper).
        """
        return _TxnContextManager(self, label, isolation)

    def sql(self, statement: str, params: Sequence[Any] = (), label: str | None = None) -> ResultSet:
        """One-statement transaction (begin, execute, commit)."""
        with self.txn(label=label or statement.split(None, 1)[0].lower()) as t:
            return t.execute(statement, params)

    # -- workflow -------------------------------------------------------------

    def call(self, handler_name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke another handler as an RPC within the same request.

        The request id propagates (§3.1: "applications propagate a unique
        ID for each request through RPCs"), and TROD records the workflow
        edge.
        """
        return self.runtime.invoke_child(self, handler_name, args, kwargs)

    # -- determinism-safe utilities ------------------------------------------

    def now(self) -> int:
        return self.runtime.clock.now()

    def emit(self, channel: str, payload: Any) -> SideEffect:
        """Record an (idempotent) external side effect."""
        effect = SideEffect(
            req_id=self.req_id,
            handler=self.handler_name,
            channel=channel,
            payload=payload,
            ts=self.runtime.clock.tick(),
        )
        self.runtime.record_side_effect(self, effect)
        return effect

    def fail(self, message: str) -> None:
        """Raise an application-level error from a handler."""
        raise AppRuntimeError(message)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RequestContext {self.req_id} {self.handler_name}>"
