"""Self-managing cluster layer: failure detection, failover, resharding.

The pieces sit on top of the replication and sharding tiers:

* :class:`~repro.cluster.detector.HeartbeatDetector` — probes node
  liveness (``Database.ping``) on a schedule and, after a configurable
  run of consecutive missed heartbeats, confirms the failure and drives
  the registered failover action (``ReplicaSet.promote`` /
  ``ShardedDatabase.failover``).
* :func:`~repro.cluster.reshard.reshard` — migrates a live sharded
  cluster from N to M stores while 2PC writes continue: chunked snapshot
  copy, delta catch-up from per-shard replication-log taps, and an
  atomic router/coordinator swap under a brief write fence.
* :class:`~repro.cluster.controller.Controller` — the facade owning the
  background loops (replica shipping, heartbeat detection, migrations)
  as cooperative-scheduler tasks, plus kill/revive chaos helpers.
"""

from repro.cluster.controller import Controller
from repro.cluster.detector import HeartbeatDetector
from repro.cluster.reshard import reshard

__all__ = ["Controller", "HeartbeatDetector", "reshard"]
