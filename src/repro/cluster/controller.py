"""The cluster controller: background loops and chaos helpers.

A :class:`Controller` wraps one :class:`~repro.db.sharding.
ShardedDatabase` and owns the self-managing machinery as cooperative-
scheduler tasks:

* :meth:`Controller.ship_loop` — drains every shard's replication log a
  batch at a time (replica catch-up interleaved with foreground work).
* :meth:`Controller.detection_loop` — refreshes the heartbeat watch set
  to the current topology and polls it; a confirmed primary failure
  drives :meth:`~repro.db.sharding.ShardedDatabase.failover`
  automatically, with no operator in the loop.
* :meth:`Controller.reshard` — runs the online N -> M migration
  (:func:`repro.cluster.reshard.reshard`) as a task while both loops —
  and the write workload — keep running.

``kill`` / ``revive`` flip the simulated-crash flag the detector probes,
so chaos tests drive real failovers deterministically.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.detector import HeartbeatDetector
from repro.cluster.reshard import reshard as _reshard
from repro.db.database import Database
from repro.db.sharding import ShardedDatabase
from repro.errors import ReplicationError
from repro.faults import BackoffPolicy
from repro.runtime.scheduler import CheckpointKind, maybe_checkpoint


class Controller:
    """Owns a sharded cluster's failure detection, shipping, and moves."""

    def __init__(
        self,
        sharded: ShardedDatabase,
        suspicion_threshold: int = 3,
        ship_batch: int = 32,
        probe_timeout: float | None = None,
        probe_backoff: "BackoffPolicy | None" = None,
    ):
        self.sharded = sharded
        self.detector = HeartbeatDetector(
            suspicion_threshold,
            probe_timeout=probe_timeout,
            backoff=probe_backoff,
        )
        self.ship_batch = ship_batch
        self.stop_requested = False
        self.stats = {
            "detection_polls": 0,
            "ship_rounds": 0,
            "shipped_records": 0,
            "reshards": 0,
            "reprovisions": 0,
        }

    # -- topology-tracking watch set --------------------------------------

    def refresh_watches(self) -> None:
        """Point the detector at the *current* topology.

        Resharding and failover change the store list and replica sets
        under the detector's feet; each detection tick re-derives the
        watch set so new primaries are probed and departed ones dropped.
        Replica probes carry no failover action — a dead replica is
        simply skipped by shipping and routing until revived or
        re-provisioned by the next promote.
        """
        wanted: set[str] = set()
        for store in list(self.sharded.store_names):
            name = f"primary:{store}"
            wanted.add(name)
            if name not in self.detector.watching():
                self.detector.watch_shard(self.sharded, store)
        for store, replica_set in list(self.sharded.replica_sets.items()):
            for replica in list(replica_set.replicas):
                name = f"replica:{store}/{replica.name}"
                wanted.add(name)
                if name not in self.detector.watching():
                    database = replica.database
                    self.detector.watch(name, lambda db=database: db.ping())
        for name in self.detector.watching():
            if name not in wanted:
                self.detector.unwatch(name)

    # -- background loops (cooperative-scheduler tasks) -------------------

    def detection_loop(self, max_polls: int | None = None) -> int:
        """Probe liveness until stopped; returns confirmed-failure count.

        Run as a scheduler task: each tick refreshes the watch set,
        polls every probe once, and yields the baton. Failovers happen
        inside the poll, on this task's turn — which is what makes the
        chaos tests deterministic.
        """
        confirmed = 0
        polls = 0
        while not self.stop_requested:
            self.refresh_watches()
            confirmed += len(self.detector.poll())
            self.stats["reprovisions"] += self.reprovision()
            self.stats["detection_polls"] += 1
            polls += 1
            if max_polls is not None and polls >= max_polls:
                break
            maybe_checkpoint(CheckpointKind.SCAN_BATCH, "detection_loop")
        return confirmed

    def ship_loop(self, max_rounds: int | None = None) -> int:
        """Drain replica shipping in batches until stopped.

        Unlike :meth:`ReplicaSet.ship_loop`, this loop does not exit
        when the logs run dry — it idles (still yielding) so commits
        that arrive later keep flowing to replicas for as long as the
        controller runs.
        """
        applied = 0
        rounds = 0
        while not self.stop_requested:
            try:
                got = self.sharded.catch_up_replicas(limit=self.ship_batch)
            except ReplicationError:
                # A primary died mid-drain; the detection loop will
                # promote and the next round ships from the new primary.
                got = 0
            applied += got
            self.stats["ship_rounds"] += 1
            self.stats["shipped_records"] += got
            rounds += 1
            if max_rounds is not None and rounds >= max_rounds:
                break
            maybe_checkpoint(CheckpointKind.SCAN_BATCH, "ship_loop")
        return applied

    def reshard(self, n_shards: int, chunk_size: int = 128) -> dict[str, Any]:
        """Online N -> M migration; see :func:`repro.cluster.reshard.reshard`."""
        result = _reshard(self.sharded, n_shards, chunk_size=chunk_size)
        self.stats["reshards"] += 1
        self.refresh_watches()
        return result

    def reprovision(self) -> int:
        """Rejoin every revived retired node as a fresh replica.

        A primary demoted by failover sits in its replica set's
        ``retired`` list; once revived (``crashed`` cleared) the next
        detection tick re-provisions it from the current primary's
        snapshot — the node rejoins the fleet automatically, no operator
        action. Returns the number of nodes rejoined this call.
        """
        rejoined = 0
        for replica_set in list(self.sharded.replica_sets.values()):
            rejoined += replica_set.reprovision()
        if rejoined:
            self.refresh_watches()
        return rejoined

    @property
    def cluster_stats(self) -> dict[str, int]:
        """One unified robustness-counter surface for the whole cluster.

        Mirrors ``executor_stats``/``storage_stats``: detector counters,
        per-replica-set replication counters (summed across shards), the
        coordinator's 2PC decision-log counters, and the controller's own
        loop counters, in one flat dict.
        """
        return self.sharded.cluster_stats | {
            f"detector_{key}": value for key, value in self.detector.stats.items()
        } | {
            "detection_polls": self.stats["detection_polls"],
            "ship_rounds": self.stats["ship_rounds"],
            "controller_shipped_records": self.stats["shipped_records"],
            "reshards": self.stats["reshards"],
            "controller_reprovisions": self.stats["reprovisions"],
        }

    def stop(self) -> None:
        """Ask both loops to exit at their next tick."""
        self.stop_requested = True

    # -- chaos helpers ----------------------------------------------------

    def kill(self, store: str) -> Database:
        """Simulate a crash of a shard's primary (it answers nothing)."""
        database = self.sharded.shard_named(store)
        database.crashed = True
        return database

    def kill_replica(self, store: str, replica: str) -> Database:
        database = self.sharded.replica_sets[store].replica(replica).database
        database.crashed = True
        return database

    def revive(self, database: Database) -> None:
        """Bring a killed node back; shipping heals it from the log."""
        database.crashed = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Controller {self.sharded.name!r} "
            f"shards={len(self.sharded.shards)} "
            f"watching={len(self.detector.watching())}>"
        )
