"""Online resharding: migrate a sharded cluster N -> M stores, live.

The protocol (each phase is cooperative — the migration runs as a
scheduler task and yields between chunks, so 2PC writers keep
committing throughout):

1. **Tap** every old shard with a :class:`~repro.db.replication.
   ReplicationLog` — from this point no commit can escape the migration.
2. **Provision** M fresh stores carrying the cluster's schema, indexes,
   and aliases.
3. **Snapshot copy**: under a SNAPSHOT transaction per old shard, scan
   every table in chunks and insert each row into its new owner (the new
   M-way hash ring). Row ids are assigned fresh — ids are only unique
   per store, so N stores' ids cannot be preserved into M — and an id
   map ``(old store, table, old row id) -> (new store, new row id)``
   records every placement.
4. **Delta catch-up**: replay tapped commits past each shard's snapshot
   CSN, re-hashed onto the new owners through the id map. Rounds repeat
   (yielding between them) until a round finds the logs nearly drained.
5. **Fence and swap**: raise the write fence (new write transactions
   park; reads continue), wait out in-flight writers, drain the final
   deltas, verify no DDL slipped in (catalog epochs unchanged), then
   atomically swap the router/store-map/coordinator via
   :meth:`~repro.db.sharding.ShardedDatabase.apply_reshard` and lift
   the fence. The old primaries are fenced so stray references fail
   loudly instead of accepting orphaned writes.

Invariants: the global CSN clock and aligned log survive (a synthetic
aligned commit maps the new stores' positions at the swap); AS-OF reads
below the new reshard horizon raise
:class:`~repro.errors.TimeTravelError`; every row sits on its hash
owner afterwards, so ``ShardedDatabase(databases=...)`` adoption checks
would pass on the new stores.
"""

from __future__ import annotations

from typing import Any

from repro.db.database import Database
from repro.db.index import SortedIndex
from repro.db.replication import ReplicationLog, ShipRecord
from repro.db.sharding import ShardedDatabase, ShardRouter
from repro.db.txn.manager import IsolationLevel
from repro.errors import ReplicationError, SchemaError, TransactionError
from repro.runtime.scheduler import CheckpointKind, maybe_checkpoint

#: Delta-catch-up rounds before fencing regardless of remaining lag: the
#: fence absorbs whatever is left, it just stays up a little longer.
_MAX_LIVE_ROUNDS = 1000


def _provision(template: Database, name: str) -> Database:
    """A fresh, empty store carrying the cluster's schema and indexes."""
    database = Database(name=name)
    for table in template.catalog.table_names():
        schema = template.catalog.get(table)
        database.create_table(schema)
        existing = database.index_set(table).indexes
        for index_name, index in template.index_set(table).indexes.items():
            if index_name in existing:
                continue  # constraint-backed uq_* index, auto-created
            if isinstance(index, SortedIndex):
                database.create_index(
                    index.name, schema.name, list(index.columns),
                    sorted_index=True,
                )
            else:
                database.create_index(
                    index.name, schema.name, list(index.columns),
                    unique=index.unique,
                )
    for alias, target in template.catalog.aliases().items():
        database.add_table_alias(alias, target)
    return database


class _Migration:
    """State for one N -> M migration (id map, taps, counters)."""

    def __init__(self, sharded: ShardedDatabase, n_shards: int):
        self.sharded = sharded
        self.old_named = sharded.named_shards()
        self.template = self.old_named[0][1]
        new_names = [f"shard{i}" for i in range(n_shards)]
        self.router = ShardRouter(new_names)
        self.router._keys = dict(sharded.router._keys)
        self.new_stores = {
            name: _provision(self.template, f"{sharded.name}-{name}")
            for name in new_names
        }
        #: (old store, table, old row id) -> (new store, new row id).
        self.id_map: dict[tuple[str, str, int], tuple[str, int]] = {}
        self.taps = {store: ReplicationLog(db) for store, db in self.old_named}
        self.applied_seq = {store: 0 for store, _ in self.old_named}
        self.snap_csns: dict[str, int] = {}
        self.stats: dict[str, Any] = {
            "rows_copied": 0,
            "deltas_applied": 0,
            "catchup_rounds": 0,
            "old_shards": len(self.old_named),
            "new_shards": n_shards,
        }

    def detach(self) -> None:
        for tap in self.taps.values():
            tap.detach()

    # -- phase 3: snapshot copy -------------------------------------------

    def copy_snapshot(self, chunk_size: int) -> None:
        for store, db in self.old_named:
            snap = db.begin(IsolationLevel.SNAPSHOT)
            self.snap_csns[store] = snap.snapshot_csn
            try:
                for table in db.catalog.table_names():
                    chunk: list[tuple[int, tuple]] = []
                    for row_id, values in snap.scan(table):
                        chunk.append((row_id, values))
                        if len(chunk) >= chunk_size:
                            self._copy_chunk(store, table, chunk)
                            chunk = []
                            maybe_checkpoint(
                                CheckpointKind.SCAN_BATCH, "reshard-copy"
                            )
                    if chunk:
                        self._copy_chunk(store, table, chunk)
            finally:
                snap.abort()

    def _copy_chunk(
        self, store: str, table: str, chunk: list[tuple[int, tuple]]
    ) -> None:
        schema = self.template.catalog.get(table)
        by_owner: dict[str, list[tuple[int, tuple]]] = {}
        for row_id, values in chunk:
            owner = self.router.shard_for_row(table, schema, values)
            by_owner.setdefault(owner, []).append((row_id, values))
        for owner, rows in by_owner.items():
            txn = self.new_stores[owner].begin()
            try:
                for old_id, values in rows:
                    new_id = txn.insert(table, values)
                    self.id_map[(store, table, old_id)] = (owner, new_id)
                txn.commit()
            except Exception:
                txn.abort()
                raise
        self.stats["rows_copied"] += len(chunk)

    # -- phase 4: delta catch-up ------------------------------------------

    def drain(self, store: str) -> int:
        """Replay tapped records past the snapshot CSN onto new owners."""
        applied = 0
        for record in self.taps[store].since(self.applied_seq[store]):
            self.applied_seq[store] = record.seq
            if record.kind == "ddl":
                raise ReplicationError(
                    "DDL landed during resharding (before the fence); "
                    "the migration cannot carry a schema change — aborted"
                )
            if record.csn <= self.snap_csns[store]:
                continue  # already inside the snapshot copy
            self._apply_delta(store, record)
            applied += 1
        return applied

    def drain_all(self) -> int:
        return sum(self.drain(store) for store, _ in self.old_named)

    def _apply_delta(self, store: str, record: ShipRecord) -> None:
        if not record.changes:
            return  # empty commit: only the old shard's CSN clock moved
        by_owner: dict[str, list[tuple[str, str, int, tuple | None]]] = {}
        for change in record.changes:
            table = self.template.catalog.resolve(change.table)
            if change.op == "insert":
                schema = self.template.catalog.get(table)
                owner = self.router.shard_for_row(table, schema, change.values)
            else:
                placed = self.id_map.get((store, table, change.row_id))
                if placed is None:
                    raise ReplicationError(
                        f"delta {change.op} on {store}/{table} row "
                        f"{change.row_id} references a row the migration "
                        "never placed; the tap stream has a gap"
                    )
                owner = placed[0]
            by_owner.setdefault(owner, []).append(
                (change.op, table, change.row_id, change.values)
            )
        for owner, changes in by_owner.items():
            txn = self.new_stores[owner].begin()
            try:
                for op, table, old_id, values in changes:
                    if op == "insert":
                        new_id = txn.insert(table, values)
                        self.id_map[(store, table, old_id)] = (owner, new_id)
                    elif op == "update":
                        _owner, new_id = self.id_map[(store, table, old_id)]
                        txn.update(table, new_id, values)
                    else:  # delete
                        _owner, new_id = self.id_map.pop((store, table, old_id))
                        txn.delete(table, new_id)
                txn.commit()
            except Exception:
                txn.abort()
                raise
        self.stats["deltas_applied"] += 1


def reshard(
    sharded: ShardedDatabase,
    n_shards: int,
    chunk_size: int = 128,
) -> dict[str, Any]:
    """Migrate ``sharded`` to ``n_shards`` stores under live 2PC traffic.

    Returns the migration's stats dict (rows copied, deltas applied,
    rounds, and ``horizon`` — the new reshard-horizon global CSN).
    Raises without touching the visible topology if the migration cannot
    complete (DDL mid-copy, a stuck writer); the fence is always lifted.
    """
    if n_shards < 1:
        raise SchemaError("a sharded database needs at least one shard")
    if chunk_size < 1:
        raise SchemaError(f"chunk size must be >= 1, got {chunk_size}")
    if sharded._resharding:
        raise TransactionError(
            f"a reshard of {sharded.name!r} is already in progress"
        )
    sharded._resharding = True
    migration = _Migration(sharded, n_shards)
    try:
        migration.copy_snapshot(chunk_size)
        # Live catch-up: repeat until a round finds the taps (nearly)
        # dry. Writers keep committing between rounds; the fence below
        # absorbs whatever trickles in after the last live round.
        for _round in range(_MAX_LIVE_ROUNDS):
            applied = migration.drain_all()
            migration.stats["catchup_rounds"] += 1
            if applied < chunk_size:
                break
            maybe_checkpoint(CheckpointKind.SCAN_BATCH, "reshard-catchup")
        epochs = sharded._epochs()
        sharded.fence_writes()
        try:
            sharded.drain_writers()
            migration.drain_all()
            if sharded._epochs() != epochs:  # pragma: no cover - drain raises first
                raise ReplicationError(
                    "schema changed during resharding; migration aborted"
                )
            old_named = migration.old_named
            migration.stats["horizon"] = sharded.apply_reshard(
                migration.new_stores
            )
        finally:
            sharded.unfence_writes()
        # Old primaries are out of the topology; fence them so any stray
        # reference fails loudly instead of committing into a void.
        for _store, db in old_named:
            db.fenced = True
        return migration.stats
    finally:
        migration.detach()
        sharded._resharding = False
