"""Heartbeat failure detection driving automatic failover.

A :class:`HeartbeatDetector` owns a set of named liveness probes. Each
:meth:`~HeartbeatDetector.poll` runs every probe once; a probe that
raises :class:`~repro.errors.UnavailableError` counts as one missed
heartbeat. A target is *suspected* after its first miss and *confirmed
failed* after ``suspicion_threshold`` consecutive misses — at which
point its registered failover action runs (once per down/up cycle).

The detector is deliberately passive: it never sleeps or schedules
itself. The :class:`~repro.cluster.controller.Controller` runs it as a
cooperative-scheduler loop, which keeps chaos tests deterministic — the
probe cadence is the scheduler's interleaving, not wall-clock time.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

from repro.errors import ProbeTimeoutError, ReplicationError, UnavailableError
from repro.faults import BackoffPolicy, fault_point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.replication import ReplicaSet
    from repro.db.sharding import ShardedDatabase


class _Watch:
    __slots__ = ("name", "probe", "on_confirmed", "misses", "confirmed", "skip")

    def __init__(
        self,
        name: str,
        probe: Callable[[], object],
        on_confirmed: Callable[[str], object] | None,
    ):
        self.name = name
        self.probe = probe
        self.on_confirmed = on_confirmed
        self.misses = 0
        self.confirmed = False
        #: Polls to sit out before probing again (backoff after misses).
        self.skip = 0


class HeartbeatDetector:
    """Confirms node failures after consecutive missed heartbeats.

    ``suspicion_threshold`` is the number of consecutive failed probes
    before a failure is confirmed: one flaky probe suspects a node,
    repeated misses convict it. A successful probe resets both the miss
    count and the confirmed state, so a node that comes back (or is
    replaced by a promoted replica behind the same probe) re-arms the
    detector for the next outage.
    """

    def __init__(
        self,
        suspicion_threshold: int = 3,
        probe_timeout: float | None = None,
        backoff: BackoffPolicy | None = None,
    ):
        if suspicion_threshold < 1:
            raise ReplicationError(
                f"suspicion threshold must be >= 1, got {suspicion_threshold}"
            )
        if probe_timeout is not None and probe_timeout <= 0:
            raise ReplicationError(
                f"probe_timeout must be > 0, got {probe_timeout}"
            )
        self.suspicion_threshold = suspicion_threshold
        #: Wall-clock budget (seconds) for one probe call. A probe that
        #: answers but takes longer counts as a missed heartbeat — an
        #: overloaded node and a dead one look the same to its clients.
        self.probe_timeout = probe_timeout
        #: Optional per-target probe backoff: after a miss, the target
        #: sits out ``backoff.ticks(misses)`` polls before being probed
        #: again, so a long outage is not hammered at full cadence.
        self.backoff = backoff
        self._watches: dict[str, _Watch] = {}
        self.stats = {
            "probes": 0,
            "misses": 0,
            "probe_timeouts": 0,
            "backoff_skips": 0,
            "confirmed_failures": 0,
            "failovers": 0,
            "failover_errors": 0,
        }

    # -- registration -----------------------------------------------------

    def watch(
        self,
        name: str,
        probe: Callable[[], object],
        on_confirmed: Callable[[str], object] | None = None,
    ) -> None:
        """Register a liveness probe (replacing any previous ``name``).

        ``probe`` should raise :class:`~repro.errors.UnavailableError`
        when the target is down (``Database.ping`` does); resolve the
        target *inside* the probe (e.g. ``lambda:
        sharded.shard_named(store).ping()``) so a failover that swaps
        the database behind a name is probed, not the corpse.
        ``on_confirmed`` runs once per confirmed failure; if it raises
        :class:`~repro.errors.ReplicationError` (say, a manual promote
        is already in flight) the failure is left unconfirmed so the
        next poll retries.
        """
        self._watches[name] = _Watch(name, probe, on_confirmed)

    def unwatch(self, name: str) -> None:
        self._watches.pop(name, None)

    def watching(self) -> list[str]:
        return sorted(self._watches)

    def watch_replica_set(
        self,
        name: str,
        replica_set: "ReplicaSet",
        on_confirmed: Callable[[str], object] | None = None,
    ) -> None:
        """Watch a replica set's (live) primary; promote on confirmation."""
        if on_confirmed is None:
            def on_confirmed(_name: str) -> object:
                return replica_set.promote()

        self.watch(name, lambda: replica_set.primary.ping(), on_confirmed)

    def watch_shard(self, sharded: "ShardedDatabase", store: str) -> None:
        """Watch one shard's primary; drive ``sharded.failover`` on failure."""
        self.watch(
            f"primary:{store}",
            lambda: sharded.shard_named(store).ping(),
            lambda _name: sharded.failover(store),
        )

    # -- probing ----------------------------------------------------------

    def poll(self) -> list[str]:
        """Probe every watched target once; returns names confirmed now.

        Confirmation fires the target's failover action. An action that
        raises ReplicationError — promotion already in progress, no
        healthy replica yet, no replica set attached — is counted in
        ``stats['failover_errors']`` and the target stays unconfirmed,
        so the next poll retries rather than wedging the topology.
        """
        confirmed_now: list[str] = []
        for watch in list(self._watches.values()):
            if watch.skip > 0:
                watch.skip -= 1
                self.stats["backoff_skips"] += 1
                continue
            self.stats["probes"] += 1
            missed = False
            try:
                fault_point("detector.probe", target=watch.name)
                started = time.monotonic()
                watch.probe()
                if (
                    self.probe_timeout is not None
                    and time.monotonic() - started > self.probe_timeout
                ):
                    # The target answered, but too slowly to trust: a
                    # node this overloaded is indistinguishable from a
                    # dead one to its clients.
                    self.stats["probe_timeouts"] += 1
                    missed = True
            except ProbeTimeoutError:
                self.stats["probe_timeouts"] += 1
                missed = True
            except UnavailableError:
                missed = True
            if missed:
                self.stats["misses"] += 1
                watch.misses += 1
                if watch.misses >= self.suspicion_threshold and not watch.confirmed:
                    watch.confirmed = True
                    self.stats["confirmed_failures"] += 1
                    confirmed_now.append(watch.name)
                    if watch.on_confirmed is not None:
                        try:
                            watch.on_confirmed(watch.name)
                            self.stats["failovers"] += 1
                        except ReplicationError:
                            self.stats["failover_errors"] += 1
                            watch.confirmed = False
                elif self.backoff is not None and not watch.confirmed:
                    # Back off a suspected-but-unconfirmed target;
                    # confirmed targets keep full probe cadence so
                    # recovery is noticed promptly.
                    watch.skip = self.backoff.ticks(watch.misses)
            else:
                watch.misses = 0
                watch.confirmed = False
                watch.skip = 0
        return confirmed_now

    def suspected(self) -> list[str]:
        """Targets with missed heartbeats that are not yet confirmed."""
        return sorted(
            w.name for w in self._watches.values() if w.misses and not w.confirmed
        )

    def confirmed(self) -> list[str]:
        return sorted(w.name for w in self._watches.values() if w.confirmed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<HeartbeatDetector watching={len(self._watches)} "
            f"threshold={self.suspicion_threshold}>"
        )
