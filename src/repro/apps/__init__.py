"""Case-study applications from the paper's evaluation (§2, §4).

Each module builds a database schema and registers request handlers —
including the *buggy* handlers reconstructed from the cited bug reports
and their fixed variants used for retroactive testing:

* :mod:`repro.apps.moodle` — forum subscriptions (MDL-59854 TOCTOU race)
  and course restore (MDL-60669 patch regression)
* :mod:`repro.apps.mediawiki` — concurrent page edits (MW-44325 duplicate
  sitelinks, MW-39225 wrong article size deltas)
* :mod:`repro.apps.ecommerce` — checkout microservice workflow, used for
  the tracing-overhead benchmark and the exfiltration case study
* :mod:`repro.apps.profiles` — user-profile service for the §4.2
  access-control patterns
"""

from repro.apps.moodle import build_moodle_app
from repro.apps.mediawiki import build_mediawiki_app
from repro.apps.ecommerce import build_ecommerce_app
from repro.apps.profiles import build_profiles_app

__all__ = [
    "build_ecommerce_app",
    "build_mediawiki_app",
    "build_moodle_app",
    "build_profiles_app",
]
