"""Moodle-like forum application (§2, §4.1).

Reimplements the transaction structure of two real Moodle bugs:

* **MDL-59854** — ``subscribeUser`` checks for an existing subscription in
  one transaction and inserts in a second one; two interleaved requests
  for the same (user, forum) both pass the check and both insert,
  creating duplicates that only surface later when ``fetchSubscribers``
  trips over them. ``subscribe_user_fixed`` wraps check+insert in one
  transaction (the fix one developer suggested in the bug thread).
* **MDL-60669** — the regression caused by the MDL-59854 patch: restoring
  a deleted course fails when duplicate subscriptions already exist in
  its forums. ``restore_course`` raises exactly in that corner case, so
  retroactive testing of the subscription fix against requests that touch
  the same table exposes it before production would.

The ``forum_sub`` table deliberately has **no** unique constraint — as in
Moodle, uniqueness was an application-level assumption, which is why the
race corrupts data silently.
"""

from __future__ import annotations

from repro.db.database import Database
from repro.runtime.context import RequestContext
from repro.runtime.workflow import Runtime

#: Event-table names matching the paper's examples (Table 2 uses
#: "ForumEvents" for the forum subscription table).
EVENT_NAMES = {
    "forum_sub": "ForumEvents",
    "courses": "CourseEvents",
    "course_forums": "CourseForumEvents",
}


def create_schema(db: Database) -> None:
    db.execute(
        "CREATE TABLE forum_sub (userId TEXT NOT NULL, forum TEXT NOT NULL)"
    )
    db.execute(
        "CREATE TABLE courses ("
        " courseId TEXT NOT NULL, name TEXT, status TEXT NOT NULL)"
    )
    db.execute(
        "CREATE TABLE course_forums ("
        " courseId TEXT NOT NULL, forum TEXT NOT NULL)"
    )


# ---------------------------------------------------------------------------
# Handlers (buggy originals)
# ---------------------------------------------------------------------------


def subscribe_user(ctx: RequestContext, user_id: str, forum: str) -> bool:
    """The MDL-59854 TOCTOU bug: check and insert in separate transactions."""
    with ctx.txn(label="isSubscribed") as t:
        existing = t.execute(
            "SELECT * FROM forum_sub WHERE userId = ? AND forum = ?",
            (user_id, forum),
        )
        if len(existing) > 0:
            return True
    with ctx.txn(label="DB.insert") as t:
        t.execute(
            "INSERT INTO forum_sub (userId, forum) VALUES (?, ?)",
            (user_id, forum),
        )
    return True


def subscribe_user_fixed(ctx: RequestContext, user_id: str, forum: str) -> bool:
    """The fix: isSubscribed and DB.insert wrapped in one transaction."""
    with ctx.txn(label="subscribeAtomic") as t:
        existing = t.execute(
            "SELECT * FROM forum_sub WHERE userId = ? AND forum = ?",
            (user_id, forum),
        )
        if len(existing) == 0:
            t.execute(
                "INSERT INTO forum_sub (userId, forum) VALUES (?, ?)",
                (user_id, forum),
            )
    return True


def unsubscribe_user(ctx: RequestContext, user_id: str, forum: str) -> int:
    with ctx.txn(label="DB.delete") as t:
        result = t.execute(
            "DELETE FROM forum_sub WHERE userId = ? AND forum = ?",
            (user_id, forum),
        )
    return result.rowcount


def fetch_subscribers(ctx: RequestContext, forum: str) -> list[str]:
    """Raises when it sees duplicates — the error MDL-59854 reports."""
    with ctx.txn(label="DB.executeQuery") as t:
        rows = t.execute(
            "SELECT userId FROM forum_sub WHERE forum = ?", (forum,)
        )
    users = [row[0] for row in rows]
    if len(users) != len(set(users)):
        ctx.fail(f"duplicated values in column userId: {sorted(users)}")
    return users


# ---------------------------------------------------------------------------
# Course lifecycle (MDL-60669)
# ---------------------------------------------------------------------------


def create_course(ctx: RequestContext, course_id: str, name: str, forums: list[str]) -> str:
    with ctx.txn(label="createCourse") as t:
        t.execute(
            "INSERT INTO courses (courseId, name, status) VALUES (?, ?, 'active')",
            (course_id, name),
        )
        for forum in forums:
            t.execute(
                "INSERT INTO course_forums (courseId, forum) VALUES (?, ?)",
                (course_id, forum),
            )
    return course_id


def delete_course(ctx: RequestContext, course_id: str) -> bool:
    """Soft-delete; subscriptions are deliberately left behind (as Moodle does)."""
    with ctx.txn(label="deleteCourse") as t:
        result = t.execute(
            "UPDATE courses SET status = 'deleted' WHERE courseId = ?",
            (course_id,),
        )
    return result.rowcount > 0


def restore_course(ctx: RequestContext, course_id: str) -> bool:
    """MDL-60669: restore fails when a course forum holds duplicate subs.

    The MDL-59854 patch added strictness that this path did not expect;
    restoring a course whose forums contain pre-existing duplicates now
    raises in production.
    """
    with ctx.txn(label="restoreCourse") as t:
        forums = t.execute(
            "SELECT forum FROM course_forums WHERE courseId = ?", (course_id,)
        )
        for (forum,) in forums:
            subs = t.execute(
                "SELECT userId FROM forum_sub WHERE forum = ?", (forum,)
            )
            users = [row[0] for row in subs]
            if len(users) != len(set(users)):
                ctx.fail(
                    f"course restore failed: duplicate subscriptions in "
                    f"forum {forum!r}: {sorted(users)}"
                )
        t.execute(
            "UPDATE courses SET status = 'active' WHERE courseId = ?",
            (course_id,),
        )
    return True


# ---------------------------------------------------------------------------


def build_moodle_app(db: Database, runtime: Runtime) -> dict[str, str]:
    """Create the schema, register handlers; returns TROD event-name map."""
    create_schema(db)
    runtime.register("subscribeUser", subscribe_user)
    runtime.register("subscribeUserFixed", subscribe_user_fixed)
    runtime.register("unsubscribeUser", unsubscribe_user)
    runtime.register("fetchSubscribers", fetch_subscribers)
    runtime.register("createCourse", create_course)
    runtime.register("deleteCourse", delete_course)
    runtime.register("restoreCourse", restore_course)
    return dict(EVENT_NAMES)
