"""User-profile service for the §4.2 access-control patterns.

Near & Jackson's patterns, as the paper demonstrates them:

* **User Profiles** — only users themselves can update their profiles.
  ``update_profile`` enforces this; ``update_profile_insecure`` does not,
  and the paper's SQL query over ``ProfileEvents`` finds its traces.
* **Authentication** — only logged-in users may read certain objects.
  ``read_messages`` forgets the check; unauthenticated reads show up as
  ``Executions`` rows with a NULL ``AuthUser`` joined to read events.

The ``profiles`` table uses the paper's exact column names (``UserName``,
``UpdatedBy``) so the §4.2 query runs verbatim.
"""

from __future__ import annotations

from repro.db.database import Database
from repro.runtime.context import RequestContext
from repro.runtime.workflow import Runtime

EVENT_NAMES = {
    "profiles": "ProfileEvents",
    "messages": "MessageEvents",
}


def create_schema(db: Database) -> None:
    db.execute(
        "CREATE TABLE profiles ("
        " UserName TEXT NOT NULL, Email TEXT, Bio TEXT, UpdatedBy TEXT)"
    )
    db.execute(
        "CREATE TABLE messages ("
        " msgId TEXT NOT NULL, recipient TEXT NOT NULL, body TEXT)"
    )


def create_profile(ctx: RequestContext, user_name: str, email: str) -> str:
    with ctx.txn(label="createProfile") as t:
        t.execute(
            "INSERT INTO profiles (UserName, Email, Bio, UpdatedBy)"
            " VALUES (?, ?, '', ?)",
            (user_name, email, user_name),
        )
    return user_name


def update_profile(ctx: RequestContext, user_name: str, bio: str) -> bool:
    """Secure variant: enforces the User Profiles pattern."""
    if ctx.auth_user != user_name:
        ctx.fail(
            f"user {ctx.auth_user!r} may not update profile of {user_name!r}"
        )
    with ctx.txn(label="updateProfile") as t:
        t.execute(
            "UPDATE profiles SET Bio = ?, UpdatedBy = ? WHERE UserName = ?",
            (bio, ctx.auth_user, user_name),
        )
    return True


def update_profile_insecure(ctx: RequestContext, user_name: str, bio: str) -> bool:
    """Buggy variant: any authenticated user can update any profile."""
    with ctx.txn(label="updateProfile") as t:
        t.execute(
            "UPDATE profiles SET Bio = ?, UpdatedBy = ? WHERE UserName = ?",
            (bio, ctx.auth_user, user_name),
        )
    return True


def view_profile(ctx: RequestContext, user_name: str) -> dict | None:
    with ctx.txn(label="viewProfile") as t:
        rows = t.execute(
            "SELECT UserName, Email, Bio FROM profiles WHERE UserName = ?",
            (user_name,),
        ).rows
    if not rows:
        return None
    return {"UserName": rows[0][0], "Email": rows[0][1], "Bio": rows[0][2]}


def send_message(ctx: RequestContext, msg_id: str, recipient: str, body: str) -> str:
    with ctx.txn(label="sendMessage") as t:
        t.execute(
            "INSERT INTO messages (msgId, recipient, body) VALUES (?, ?, ?)",
            (msg_id, recipient, body),
        )
    return msg_id


def read_messages(ctx: RequestContext, recipient: str) -> list[str]:
    """Buggy variant: no login check — the Authentication pattern's target.

    A correct implementation would reject ``ctx.auth_user is None``.
    """
    with ctx.txn(label="readMessages") as t:
        rows = t.execute(
            "SELECT body FROM messages WHERE recipient = ?", (recipient,)
        ).rows
    return [row[0] for row in rows]


def read_messages_secure(ctx: RequestContext, recipient: str) -> list[str]:
    if ctx.auth_user is None:
        ctx.fail("authentication required")
    if ctx.auth_user != recipient:
        ctx.fail(f"user {ctx.auth_user!r} may not read {recipient!r}'s messages")
    with ctx.txn(label="readMessages") as t:
        rows = t.execute(
            "SELECT body FROM messages WHERE recipient = ?", (recipient,)
        ).rows
    return [row[0] for row in rows]


def build_profiles_app(db: Database, runtime: Runtime) -> dict[str, str]:
    create_schema(db)
    runtime.register("createProfile", create_profile)
    runtime.register("updateProfile", update_profile)
    runtime.register("updateProfileInsecure", update_profile_insecure)
    runtime.register("viewProfile", view_profile)
    runtime.register("sendMessage", send_message)
    runtime.register("readMessages", read_messages)
    runtime.register("readMessagesSecure", read_messages_secure)
    return dict(EVENT_NAMES)
