"""MediaWiki-like page editing application (§4.1).

Reimplements the transaction structure of two real MediaWiki bugs:

* **MW-44325** — concurrent edits of the same page can create duplicate
  site-URL links, violating an application-level uniqueness requirement.
  The cause is a non-atomic update: the edit handler checks for an
  existing link in one transaction and inserts it in a later one.
* **MW-39225** — the edit handler computes the revision's size delta from
  a page size read in an *earlier* transaction; interleaved edits make
  the stored deltas inconsistent with the actual size changes, so page
  histories show wrong article size changes.

``edit_page`` exhibits both bugs at once (they share the non-atomic
structure); ``edit_page_fixed`` performs the whole edit in one
transaction.
"""

from __future__ import annotations

from repro.db.database import Database
from repro.runtime.context import RequestContext
from repro.runtime.workflow import Runtime

EVENT_NAMES = {
    "pages": "PageEvents",
    "site_links": "SiteLinkEvents",
    "revisions": "RevisionEvents",
}


def create_schema(db: Database) -> None:
    db.execute(
        "CREATE TABLE pages ("
        " pageId TEXT NOT NULL, title TEXT, content TEXT,"
        " size INTEGER NOT NULL)"
    )
    # Uniqueness of (pageId, url) is an application-level requirement,
    # not a constraint — exactly why MW-44325 corrupts silently.
    db.execute(
        "CREATE TABLE site_links (pageId TEXT NOT NULL, url TEXT NOT NULL)"
    )
    db.execute(
        "CREATE TABLE revisions ("
        " revId INTEGER NOT NULL, pageId TEXT NOT NULL,"
        " newSize INTEGER NOT NULL, sizeDelta INTEGER NOT NULL)"
    )


def create_page(ctx: RequestContext, page_id: str, title: str, content: str) -> str:
    with ctx.txn(label="createPage") as t:
        t.execute(
            "INSERT INTO pages (pageId, title, content, size) VALUES (?, ?, ?, ?)",
            (page_id, title, content, len(content)),
        )
    return page_id


def edit_page(
    ctx: RequestContext,
    page_id: str,
    new_content: str,
    link_url: str | None = None,
) -> dict:
    """The buggy, non-atomic edit (MW-44325 + MW-39225).

    Transaction 1 reads the current size and checks the link; transaction
    2 updates the page; transaction 3 records a revision whose delta uses
    the *stale* size from transaction 1 and inserts the link based on the
    stale existence check.
    """
    with ctx.txn(label="readPage") as t:
        rows = t.execute("SELECT size FROM pages WHERE pageId = ?", (page_id,))
        if not rows.rows:
            ctx.fail(f"no such page {page_id!r}")
        old_size = rows.rows[0][0]
        link_missing = False
        if link_url is not None:
            links = t.execute(
                "SELECT * FROM site_links WHERE pageId = ? AND url = ?",
                (page_id, link_url),
            )
            link_missing = len(links) == 0
        next_rev = (
            t.execute(
                "SELECT COALESCE(MAX(revId), 0) + 1 FROM revisions"
                " WHERE pageId = ?",
                (page_id,),
            ).scalar()
        )
    new_size = len(new_content)
    with ctx.txn(label="writePage") as t:
        t.execute(
            "UPDATE pages SET content = ?, size = ? WHERE pageId = ?",
            (new_content, new_size, page_id),
        )
    with ctx.txn(label="recordRevision") as t:
        t.execute(
            "INSERT INTO revisions (revId, pageId, newSize, sizeDelta)"
            " VALUES (?, ?, ?, ?)",
            (next_rev, page_id, new_size, new_size - old_size),
        )
        if link_url is not None and link_missing:
            t.execute(
                "INSERT INTO site_links (pageId, url) VALUES (?, ?)",
                (page_id, link_url),
            )
    return {"revId": next_rev, "sizeDelta": new_size - old_size}


def edit_page_fixed(
    ctx: RequestContext,
    page_id: str,
    new_content: str,
    link_url: str | None = None,
) -> dict:
    """The atomic edit: read, update, revision, and link in one transaction."""
    with ctx.txn(label="editPageAtomic") as t:
        rows = t.execute("SELECT size FROM pages WHERE pageId = ?", (page_id,))
        if not rows.rows:
            ctx.fail(f"no such page {page_id!r}")
        old_size = rows.rows[0][0]
        new_size = len(new_content)
        t.execute(
            "UPDATE pages SET content = ?, size = ? WHERE pageId = ?",
            (new_content, new_size, page_id),
        )
        next_rev = (
            t.execute(
                "SELECT COALESCE(MAX(revId), 0) + 1 FROM revisions"
                " WHERE pageId = ?",
                (page_id,),
            ).scalar()
        )
        t.execute(
            "INSERT INTO revisions (revId, pageId, newSize, sizeDelta)"
            " VALUES (?, ?, ?, ?)",
            (next_rev, page_id, new_size, new_size - old_size),
        )
        if link_url is not None:
            links = t.execute(
                "SELECT * FROM site_links WHERE pageId = ? AND url = ?",
                (page_id, link_url),
            )
            if len(links) == 0:
                t.execute(
                    "INSERT INTO site_links (pageId, url) VALUES (?, ?)",
                    (page_id, link_url),
                )
    return {"revId": next_rev, "sizeDelta": new_size - old_size}


def fetch_site_links(ctx: RequestContext, page_id: str) -> list[str]:
    """Raises on duplicate links — the MW-44325 symptom."""
    with ctx.txn(label="fetchSiteLinks") as t:
        rows = t.execute(
            "SELECT url FROM site_links WHERE pageId = ?", (page_id,)
        )
    urls = [row[0] for row in rows]
    if len(urls) != len(set(urls)):
        ctx.fail(f"duplicate site links for page {page_id!r}: {sorted(urls)}")
    return urls


def page_history(ctx: RequestContext, page_id: str) -> list[dict]:
    with ctx.txn(label="pageHistory") as t:
        rows = t.execute(
            "SELECT revId, newSize, sizeDelta FROM revisions"
            " WHERE pageId = ? ORDER BY revId",
            (page_id,),
        )
    return [
        {"revId": r[0], "newSize": r[1], "sizeDelta": r[2]} for r in rows
    ]


def check_size_consistency(ctx: RequestContext, page_id: str, initial_size: int) -> bool:
    """MW-39225 detector: do the recorded deltas add up to the final size?

    Consistent histories satisfy ``initial + sum(deltas) == final size``
    and each revision's ``newSize - sizeDelta`` equals the previous
    revision's ``newSize``.
    """
    with ctx.txn(label="checkSizes") as t:
        history = t.execute(
            "SELECT revId, newSize, sizeDelta FROM revisions"
            " WHERE pageId = ? ORDER BY revId",
            (page_id,),
        ).rows
        current = t.execute(
            "SELECT size FROM pages WHERE pageId = ?", (page_id,)
        ).scalar()
    running = initial_size
    for _rev_id, new_size, delta in history:
        if running + delta != new_size:
            ctx.fail(
                f"inconsistent size history for {page_id!r}: revision "
                f"expected base {new_size - delta}, actual {running}"
            )
        running = new_size
    if running != current:
        ctx.fail(
            f"size history of {page_id!r} ends at {running}, "
            f"but page size is {current}"
        )
    return True


def build_mediawiki_app(db: Database, runtime: Runtime) -> dict[str, str]:
    create_schema(db)
    runtime.register("createPage", create_page)
    runtime.register("editPage", edit_page)
    runtime.register("editPageFixed", edit_page_fixed)
    runtime.register("fetchSiteLinks", fetch_site_links)
    runtime.register("pageHistory", page_history)
    runtime.register("checkSizeConsistency", check_size_consistency)
    return dict(EVENT_NAMES)
