"""E-commerce microservices application (§3.1, §4.2).

The checkout path is a *workflow* of handler invocations — the paper's
motivating application shape ("to serve a single user request, a request
handler may invoke multiple other request handlers through RPCs"). It is
used by two experiments:

* **E7 (tracing overhead)** — checkout exercises four handlers and five
  transactions per request, a realistic per-request trace volume;
* **E14 (exfiltration)** — ``harvestData`` reads the sensitive ``users``
  table and stages it in an innocuous table; a *separate* request
  (``exportReport``) later reads the staging table and emits it on an
  external channel. Catching this requires the multi-hop workflow taint
  tracking of §4.2.
"""

from __future__ import annotations

from repro.db.database import Database
from repro.runtime.context import RequestContext
from repro.runtime.workflow import Runtime

EVENT_NAMES = {
    "users": "UserEvents",
    "carts": "CartEvents",
    "cart_items": "CartItemEvents",
    "inventory": "InventoryEvents",
    "orders": "OrderEvents",
    "payments": "PaymentEvents",
    "staging": "StagingEvents",
}


def create_schema(db: Database) -> None:
    db.execute(
        "CREATE TABLE users ("
        " userId TEXT NOT NULL, email TEXT NOT NULL, creditCard TEXT)"
    )
    db.execute(
        "CREATE TABLE carts (cartId TEXT NOT NULL, userId TEXT NOT NULL)"
    )
    db.execute(
        "CREATE TABLE cart_items ("
        " cartId TEXT NOT NULL, sku TEXT NOT NULL,"
        " qty INTEGER NOT NULL, price FLOAT NOT NULL)"
    )
    db.execute(
        "CREATE TABLE inventory (sku TEXT NOT NULL, stock INTEGER NOT NULL)"
    )
    db.execute(
        "CREATE TABLE orders ("
        " orderId TEXT NOT NULL, cartId TEXT NOT NULL,"
        " userId TEXT NOT NULL, total FLOAT NOT NULL, status TEXT NOT NULL)"
    )
    db.execute(
        "CREATE TABLE payments ("
        " paymentId TEXT NOT NULL, orderId TEXT NOT NULL,"
        " amount FLOAT NOT NULL, status TEXT NOT NULL)"
    )
    db.execute("CREATE TABLE staging (key TEXT NOT NULL, value TEXT)")


# ---------------------------------------------------------------------------
# Setup handlers
# ---------------------------------------------------------------------------


def register_user(ctx: RequestContext, user_id: str, email: str, credit_card: str) -> str:
    with ctx.txn(label="insertUser") as t:
        t.execute(
            "INSERT INTO users (userId, email, creditCard) VALUES (?, ?, ?)",
            (user_id, email, credit_card),
        )
    return user_id


def restock(ctx: RequestContext, sku: str, amount: int) -> int:
    with ctx.txn(label="restock") as t:
        existing = t.execute(
            "SELECT stock FROM inventory WHERE sku = ?", (sku,)
        )
        if existing.rows:
            new_stock = existing.rows[0][0] + amount
            t.execute(
                "UPDATE inventory SET stock = ? WHERE sku = ?", (new_stock, sku)
            )
        else:
            new_stock = amount
            t.execute(
                "INSERT INTO inventory (sku, stock) VALUES (?, ?)", (sku, amount)
            )
    return new_stock


def add_to_cart(
    ctx: RequestContext, cart_id: str, user_id: str, sku: str, qty: int, price: float
) -> str:
    with ctx.txn(label="addToCart") as t:
        existing = t.execute(
            "SELECT * FROM carts WHERE cartId = ?", (cart_id,)
        )
        if not existing.rows:
            t.execute(
                "INSERT INTO carts (cartId, userId) VALUES (?, ?)",
                (cart_id, user_id),
            )
        t.execute(
            "INSERT INTO cart_items (cartId, sku, qty, price)"
            " VALUES (?, ?, ?, ?)",
            (cart_id, sku, qty, price),
        )
    return cart_id


# ---------------------------------------------------------------------------
# Checkout workflow (the RPC chain)
# ---------------------------------------------------------------------------


def checkout(ctx: RequestContext, cart_id: str, user_id: str) -> dict:
    """Root handler: validate -> reserve -> charge -> order, all via RPC."""
    total = ctx.call("validateCart", cart_id, user_id)
    ctx.call("reserveInventory", cart_id)
    order_id = f"order-{cart_id}"
    payment_id = ctx.call("chargePayment", order_id, total)
    ctx.call("createOrder", order_id, cart_id, user_id, total)
    ctx.emit("email", {"to": user_id, "subject": f"receipt for {order_id}"})
    return {"orderId": order_id, "paymentId": payment_id, "total": total}


def validate_cart(ctx: RequestContext, cart_id: str, user_id: str) -> float:
    with ctx.txn(label="validateCart") as t:
        carts = t.execute(
            "SELECT userId FROM carts WHERE cartId = ?", (cart_id,)
        )
        if not carts.rows:
            ctx.fail(f"no such cart {cart_id!r}")
        if carts.rows[0][0] != user_id:
            ctx.fail(f"cart {cart_id!r} does not belong to {user_id!r}")
        total = t.execute(
            "SELECT COALESCE(SUM(qty * price), 0.0) FROM cart_items"
            " WHERE cartId = ?",
            (cart_id,),
        ).scalar()
    return float(total)


def reserve_inventory(ctx: RequestContext, cart_id: str) -> int:
    with ctx.txn(label="reserveInventory") as t:
        items = t.execute(
            "SELECT sku, qty FROM cart_items WHERE cartId = ?", (cart_id,)
        ).rows
        for sku, qty in items:
            stock_rows = t.execute(
                "SELECT stock FROM inventory WHERE sku = ?", (sku,)
            ).rows
            stock = stock_rows[0][0] if stock_rows else 0
            if stock < qty:
                ctx.fail(f"insufficient stock for {sku!r}: {stock} < {qty}")
            t.execute(
                "UPDATE inventory SET stock = ? WHERE sku = ?",
                (stock - qty, sku),
            )
    return len(items)


def charge_payment(ctx: RequestContext, order_id: str, amount: float) -> str:
    payment_id = f"pay-{order_id}"
    with ctx.txn(label="chargePayment") as t:
        t.execute(
            "INSERT INTO payments (paymentId, orderId, amount, status)"
            " VALUES (?, ?, ?, 'charged')",
            (payment_id, order_id, amount),
        )
    return payment_id


def create_order(
    ctx: RequestContext, order_id: str, cart_id: str, user_id: str, total: float
) -> str:
    with ctx.txn(label="createOrder") as t:
        t.execute(
            "INSERT INTO orders (orderId, cartId, userId, total, status)"
            " VALUES (?, ?, ?, ?, 'placed')",
            (order_id, cart_id, user_id, total),
        )
    return order_id


def order_status(ctx: RequestContext, order_id: str) -> str | None:
    with ctx.txn(label="orderStatus") as t:
        rows = t.execute(
            "SELECT status FROM orders WHERE orderId = ?", (order_id,)
        ).rows
    return rows[0][0] if rows else None


# ---------------------------------------------------------------------------
# Attack path (E14): lateral movement through the database
# ---------------------------------------------------------------------------


def harvest_data(ctx: RequestContext, tag: str) -> int:
    """Compromised handler: copies sensitive data into an innocuous table."""
    with ctx.txn(label="readUsers") as t:
        rows = t.execute("SELECT userId, creditCard FROM users").rows
    with ctx.txn(label="stageData") as t:
        for user_id, card in rows:
            t.execute(
                "INSERT INTO staging (key, value) VALUES (?, ?)",
                (f"{tag}:{user_id}", card),
            )
    return len(rows)


def export_report(ctx: RequestContext, tag: str) -> int:
    """Seemingly valid reporting workflow that exfiltrates staged data."""
    with ctx.txn(label="readStaging") as t:
        rows = t.execute(
            "SELECT key, value FROM staging WHERE key LIKE ?", (f"{tag}:%",)
        ).rows
    ctx.emit("export", {"tag": tag, "rows": [list(r) for r in rows]})
    return len(rows)


def weekly_report(ctx: RequestContext) -> int:
    """Benign reporting workflow (control for the taint analysis)."""
    with ctx.txn(label="countOrders") as t:
        count = t.execute("SELECT COUNT(*) FROM orders").scalar()
    ctx.emit("email", {"to": "ops", "subject": f"{count} orders this week"})
    return count


def build_ecommerce_app(db: Database, runtime: Runtime) -> dict[str, str]:
    create_schema(db)
    runtime.register("registerUser", register_user)
    runtime.register("restock", restock)
    runtime.register("addToCart", add_to_cart)
    runtime.register("checkout", checkout)
    runtime.register("validateCart", validate_cart)
    runtime.register("reserveInventory", reserve_inventory)
    runtime.register("chargePayment", charge_payment)
    runtime.register("createOrder", create_order)
    runtime.register("orderStatus", order_status)
    runtime.register("harvestData", harvest_data)
    runtime.register("exportReport", export_report)
    runtime.register("weeklyReport", weekly_report)
    return dict(EVENT_NAMES)
