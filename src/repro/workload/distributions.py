"""Deterministic samplers for workload generation.

All samplers take an explicit seed, so every benchmark run sees an
identical request stream — a requirement for comparing traced vs untraced
runs in the overhead experiment (E7).
"""

from __future__ import annotations

import random
from bisect import bisect_left


class UniformSampler:
    """Uniform choice over ``n`` items."""

    def __init__(self, n: int, seed: int = 0):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self._rng = random.Random(f"uniform:{seed}")

    def sample(self) -> int:
        return self._rng.randrange(self.n)


class ZipfSampler:
    """Zipfian choice over ``n`` items (rank 0 is hottest).

    Uses an explicit inverse-CDF table; exact and fast for the item counts
    benchmarks use (<= 10^6).
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0):
        if n <= 0:
            raise ValueError("n must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.n = n
        self.theta = theta
        self._rng = random.Random(f"zipf:{seed}")
        weights = [1.0 / (rank + 1) ** theta for rank in range(n)]
        total = sum(weights)
        self._cdf: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self) -> int:
        return bisect_left(self._cdf, self._rng.random())

    def pmf(self, rank: int) -> float:
        """Probability of the item at ``rank`` (for tests)."""
        low = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - low
