"""Request workload generators for the benchmarks.

Each generator produces deterministic request streams against one of the
case-study applications, plus helpers to seed the database. The
:class:`ProvenanceFiller` synthesizes provenance rows directly — the E8
query-latency benchmark needs event counts far larger than executing real
requests would produce in reasonable bench time.
"""

from __future__ import annotations

from typing import Iterator

from repro.db.database import Database
from repro.runtime.workflow import Request, Runtime
from repro.workload.distributions import UniformSampler, ZipfSampler


class ForumWorkload:
    """Subscribe/fetch mix against the Moodle app, with optional racy pairs."""

    def __init__(
        self,
        n_users: int = 100,
        n_forums: int = 10,
        theta: float = 0.99,
        seed: int = 0,
    ):
        self.n_users = n_users
        self.n_forums = n_forums
        self._users = ZipfSampler(n_users, theta=theta, seed=seed)
        self._forums = ZipfSampler(n_forums, theta=theta, seed=seed + 1)
        self._mix = UniformSampler(100, seed=seed + 2)

    def requests(self, count: int, fetch_ratio: float = 0.2) -> Iterator[Request]:
        threshold = int(fetch_ratio * 100)
        for _ in range(count):
            forum = f"F{self._forums.sample()}"
            if self._mix.sample() < threshold:
                yield Request("fetchSubscribers", (forum,))
            else:
                user = f"U{self._users.sample()}"
                yield Request("subscribeUser", (user, forum))

    @staticmethod
    def racy_pair(user: str = "U1", forum: str = "F2") -> list[Request]:
        """Two subscriptions for the same (user, forum) — the MDL-59854 pair."""
        return [
            Request("subscribeUser", (user, forum)),
            Request("subscribeUser", (user, forum)),
        ]

    #: The paper's interleaving: R1 check, R2 check, R2 insert, R1 insert.
    RACY_SCHEDULE = [0, 1, 1, 0]
    #: A benign interleaving: R1 completes before R2 starts.
    SERIAL_SCHEDULE = [0, 0, 1]


class CheckoutWorkload:
    """Checkout workflows against the e-commerce app (4 RPC hops each)."""

    def __init__(self, n_users: int = 50, n_skus: int = 20, seed: int = 0):
        self.n_users = n_users
        self.n_skus = n_skus
        self._users = UniformSampler(n_users, seed=seed)
        self._skus = ZipfSampler(n_skus, theta=0.8, seed=seed + 1)
        self._counter = 0

    def seed_database(self, runtime: Runtime) -> None:
        """Register users and stock inventory (not part of measurements)."""
        for user in range(self.n_users):
            runtime.submit(
                "registerUser",
                f"U{user}",
                f"u{user}@example.com",
                f"4000-0000-0000-{user:04d}",
            )
        for sku in range(self.n_skus):
            runtime.submit("restock", f"SKU{sku}", 1_000_000)

    def requests(self, count: int) -> Iterator[Request]:
        """Each request is an add-to-cart followed by a checkout."""
        for _ in range(count):
            self._counter += 1
            cart = f"C{self._counter}"
            user = f"U{self._users.sample()}"
            sku = f"SKU{self._skus.sample()}"
            yield Request("addToCart", (cart, user, sku, 1, 9.99))
            yield Request("checkout", (cart, user))


class MediaWikiWorkload:
    """Page create/edit/read mix against the MediaWiki app."""

    def __init__(self, n_pages: int = 20, seed: int = 0):
        self.n_pages = n_pages
        self._pages = ZipfSampler(n_pages, theta=0.9, seed=seed)
        self._mix = UniformSampler(100, seed=seed + 1)
        self._edit_counter = 0

    def seed_database(self, runtime: Runtime) -> None:
        for page in range(self.n_pages):
            runtime.submit(
                "createPage", f"P{page}", f"Page {page}", f"content of {page}"
            )

    def requests(self, count: int, read_ratio: float = 0.3) -> Iterator[Request]:
        threshold = int(read_ratio * 100)
        for _ in range(count):
            page = f"P{self._pages.sample()}"
            if self._mix.sample() < threshold:
                yield Request("pageHistory", (page,))
            else:
                self._edit_counter += 1
                yield Request(
                    "editPage",
                    (page, f"revision {self._edit_counter} of {page}", None),
                )

    @staticmethod
    def racy_edit_pair(page: str = "P1", url: str = "http://x.org") -> list[Request]:
        """Two edits of one page — the MW-44325/MW-39225 shape."""
        return [
            Request("editPage", (page, "edit A content", url)),
            Request("editPage", (page, "edit B!", url)),
        ]

    #: Fully interleave the two 3-transaction edits.
    RACY_SCHEDULE = [0, 1, 0, 1, 0, 1]


class ProfileWorkload:
    """Profile reads/updates with a configurable violation injection rate."""

    def __init__(self, n_users: int = 20, seed: int = 0):
        self.n_users = n_users
        self._users = UniformSampler(n_users, seed=seed)
        self._mix = UniformSampler(100, seed=seed + 1)

    def seed_database(self, runtime: Runtime) -> None:
        for user in range(self.n_users):
            name = f"user{user}"
            runtime.submit(
                "createProfile", name, f"{name}@example.com", auth_user=name
            )

    def requests(
        self, count: int, violation_ratio: float = 0.05
    ) -> Iterator[Request]:
        threshold = int(violation_ratio * 100)
        for i in range(count):
            victim = f"user{self._users.sample()}"
            if self._mix.sample() < threshold:
                yield Request(
                    "updateProfileInsecure",
                    (victim, f"defaced #{i}"),
                    auth_user="attacker",
                )
            elif i % 3 == 0:
                yield Request(
                    "updateProfile", (victim, f"bio #{i}"), auth_user=victim
                )
            else:
                yield Request("viewProfile", (victim,), auth_user=victim)


class ShardedWorkload:
    """A key-value mix exercising a hash-sharded cluster end to end.

    Deterministic stream of point reads (routed to one shard), range
    scans and aggregates (scatter-gather), single-key updates, and
    cross-key transfers — the transfers routinely span shards, so they
    commit through the coordinator's 2PC and populate the aligned log.
    Key popularity is Zipfian, matching the skew real key-value traffic
    shows (hot keys concentrate on a few shards).
    """

    TABLE_DDL = "CREATE TABLE accounts (acct INTEGER, balance FLOAT, owner TEXT)"

    def __init__(self, n_keys: int = 500, theta: float = 0.99, seed: int = 0):
        self.n_keys = n_keys
        self._keys = ZipfSampler(n_keys, theta=theta, seed=seed)
        self._mix = UniformSampler(100, seed=seed + 1)
        self._spans = UniformSampler(max(2, n_keys // 10), seed=seed + 2)

    def seed_database(self, sharded) -> None:
        """Create and load the accounts table (not part of measurements)."""
        sharded.execute(self.TABLE_DDL)
        gtxn = sharded.begin()
        for key in range(self.n_keys):
            sharded.execute(
                "INSERT INTO accounts VALUES (?, ?, ?)",
                (key, 100.0, f"owner-{key}"),
                txn=gtxn,
            )
        gtxn.commit()

    def operations(
        self,
        count: int,
        read_ratio: float = 0.5,
        scan_ratio: float = 0.2,
    ) -> Iterator[tuple]:
        """``(kind, *args)`` tuples: point / scan / aggregate / transfer."""
        read_mark = int(read_ratio * 100)
        scan_mark = read_mark + int(scan_ratio * 100)
        for _ in range(count):
            roll = self._mix.sample()
            key = self._keys.sample()
            if roll < read_mark:
                yield ("point", key)
            elif roll < scan_mark:
                if roll % 2 == 0:
                    yield ("scan", key, key + self._spans.sample() + 1)
                else:
                    yield ("aggregate",)
            else:
                other = (key + self._spans.sample() + 1) % self.n_keys
                if other == key:
                    yield ("point", key)
                else:
                    yield ("transfer", key, other, 1.0)

    def apply(self, sharded, op: tuple) -> None:
        """Execute one operation against a :class:`ShardedDatabase`."""
        kind = op[0]
        if kind == "point":
            sharded.execute(
                "SELECT balance FROM accounts WHERE acct = ?", (op[1],)
            )
        elif kind == "scan":
            sharded.execute(
                "SELECT acct, balance FROM accounts "
                "WHERE acct >= ? AND acct < ? ORDER BY acct",
                (op[1], op[2]),
            )
        elif kind == "aggregate":
            sharded.execute("SELECT COUNT(*), SUM(balance) FROM accounts")
        else:  # transfer: debit one key, credit another, one atomic commit
            _kind, src, dst, amount = op
            gtxn = sharded.begin()
            sharded.execute(
                "UPDATE accounts SET balance = balance - ? WHERE acct = ?",
                (amount, src),
                txn=gtxn,
            )
            sharded.execute(
                "UPDATE accounts SET balance = balance + ? WHERE acct = ?",
                (amount, dst),
                txn=gtxn,
            )
            gtxn.commit()

    def run(self, sharded, count: int, **ratios) -> dict[str, int]:
        """Drive ``count`` operations; returns per-kind execution counts."""
        executed: dict[str, int] = {}
        for op in self.operations(count, **ratios):
            self.apply(sharded, op)
            executed[op[0]] = executed.get(op[0], 0) + 1
        return executed


class ReplicatedReadWorkload:
    """Read-heavy session traffic against a replicated database.

    Drives a :class:`~repro.db.replication.ReadRouter` (or
    ``ShardedReadRouter``) with a pool of sessions: most operations are
    Zipf-popular point reads served by replicas; the rest update the
    chosen row and immediately read it back *through the router* — the
    read-your-writes probe. In async ship mode replicas are only caught
    up every ``ship_every`` operations, so those probes routinely race
    replication lag and must be saved by the session token (stale
    fallback or forced catch-up), never by luck.
    """

    TABLE_DDL = "CREATE TABLE kv (k INTEGER, val INTEGER)"

    def __init__(
        self,
        n_keys: int = 100,
        n_sessions: int = 8,
        theta: float = 0.9,
        seed: int = 0,
    ):
        self.n_keys = n_keys
        self.n_sessions = n_sessions
        self._keys = ZipfSampler(n_keys, theta=theta, seed=seed)
        self._sessions = UniformSampler(n_sessions, seed=seed + 1)
        self._mix = UniformSampler(100, seed=seed + 2)
        self._counter = 0

    def seed_database(self, database) -> None:
        """Create and fill the kv table (works on plain and sharded DBs)."""
        database.execute(self.TABLE_DDL)
        txn = database.begin()
        for key in range(self.n_keys):
            database.execute(
                "INSERT INTO kv VALUES (?, ?)", (key, 0), txn=txn
            )
        txn.commit()

    def run(
        self,
        router,
        count: int,
        write_ratio: float = 0.2,
        ship_every: int | None = 25,
    ) -> dict[str, int]:
        """Drive ``count`` operations; returns op counts + router stats.

        Raises :class:`~repro.errors.ReplicationError` if a session ever
        fails to read its own write — the invariant this workload exists
        to hammer.
        """
        from repro.db.replication import Session
        from repro.errors import ReplicationError

        catch_up = getattr(router, "catch_up_all", None) or (
            lambda: router.replica_set.catch_up()
        )
        sessions = [Session(f"s{i}") for i in range(self.n_sessions)]
        write_mark = int(write_ratio * 100)
        counts = {"reads": 0, "writes": 0, "ryw_checks": 0}
        for i in range(count):
            session = sessions[self._sessions.sample()]
            key = self._keys.sample()
            if self._mix.sample() < write_mark:
                self._counter += 1
                router.execute(
                    "UPDATE kv SET val = ? WHERE k = ?",
                    (self._counter, key),
                    session=session,
                )
                observed = router.execute(
                    "SELECT val FROM kv WHERE k = ?", (key,), session=session
                ).scalar()
                if observed != self._counter:
                    raise ReplicationError(
                        f"session {session.name} wrote val={self._counter} "
                        f"to k={key} but read back {observed!r}"
                    )
                counts["writes"] += 1
                counts["ryw_checks"] += 1
            else:
                router.execute(
                    "SELECT val FROM kv WHERE k = ?", (key,), session=session
                )
                counts["reads"] += 1
            if ship_every and i % ship_every == ship_every - 1:
                catch_up()
        counts.update(router.stats)
        return counts


class ConnectionWorkload:
    """One statement stream, any engine: the ``repro.connect()`` workload.

    Produces a deterministic mix of inserts, updates, deletes, point and
    range reads, aggregates, and ``AS OF`` probes as plain ``(kind, sql,
    params)`` tuples — written once against the Connection API and run
    unchanged over single-node, sharded, and replicated engines. The
    differential tests drive the *same* stream through all three and
    assert byte-identical results; :meth:`run` returns per-statement
    result fingerprints to make that comparison trivial.

    ``AS OF`` probes reference commit positions bookmarked *through the
    connection* (``conn.last_commit_csn``) after each write, because the
    CSN space is engine-specific: local CSNs on one node, global CSNs on
    a cluster. The bookmark indices line up across engines even though
    the CSN values may not.
    """

    TABLE_DDL = (
        "CREATE TABLE ledger (acct INTEGER, balance FLOAT, region TEXT)"
    )
    REGIONS = ("north", "south", "east", "west")

    def __init__(self, n_keys: int = 48, seed: int = 0):
        self.n_keys = n_keys
        self._keys = ZipfSampler(n_keys, theta=0.8, seed=seed)
        self._mix = UniformSampler(100, seed=seed + 1)
        self._amounts = UniformSampler(500, seed=seed + 2)
        self._counter = 0

    def seed(self, conn) -> None:
        """Create and load the ledger through the connection under test.

        Accepts a :class:`~repro.db.connection.ConnectionPool` too — the
        whole seed then runs on one borrowed connection.
        """
        if hasattr(conn, "checkout"):
            from repro.workload.harness import checked_out

            with checked_out(conn) as borrowed:
                self.seed(borrowed)
            return
        conn.execute(self.TABLE_DDL)
        for key in range(self.n_keys):
            conn.execute(
                "INSERT INTO ledger VALUES (?, ?, ?)",
                (key, 100.0, self.REGIONS[key % len(self.REGIONS)]),
            )

    def statements(self, count: int) -> Iterator[tuple]:
        """``(kind, sql, params)``; kind 'asof' params end with a bookmark
        *index* the runner resolves to that engine's recorded CSN."""
        for _ in range(count):
            roll = self._mix.sample()
            key = self._keys.sample()
            if roll < 30:
                yield (
                    "read",
                    "SELECT balance, region FROM ledger WHERE acct = ?",
                    (key,),
                )
            elif roll < 40:
                yield (
                    "read",
                    "SELECT acct, balance FROM ledger "
                    "WHERE acct >= ? AND acct < ? ORDER BY acct",
                    (key, key + 8),
                )
            elif roll < 50:
                yield (
                    "read",
                    "SELECT region, COUNT(*), SUM(balance) FROM ledger "
                    "GROUP BY region ORDER BY region",
                    (),
                )
            elif roll < 58 and self._counter > 0:
                # Probe a historical state: bookmark index in [0, writes).
                yield (
                    "asof",
                    "SELECT acct, balance FROM ledger "
                    "WHERE acct = ? AS OF ?",
                    (key, self._amounts.sample() % self._counter),
                )
            elif roll < 66:
                self._counter += 1
                yield (
                    "write",
                    "DELETE FROM ledger WHERE acct = ?",
                    (key,),
                )
            elif roll < 74:
                self._counter += 1
                yield (
                    "write",
                    "INSERT INTO ledger VALUES (?, ?, ?)",
                    (
                        self.n_keys + self._counter,
                        float(self._amounts.sample()),
                        self.REGIONS[self._counter % len(self.REGIONS)],
                    ),
                )
            else:
                self._counter += 1
                yield (
                    "write",
                    "UPDATE ledger SET balance = balance + ? WHERE acct = ?",
                    (float(self._amounts.sample() % 50), key),
                )

    def run(self, conn, count: int, catch_up_every: int | None = None) -> list:
        """Drive ``count`` statements; returns result fingerprints.

        A fingerprint is ``(kind, sorted rows)`` for reads and ``(kind,
        rowcount)`` for writes — rows are sorted so engines that merge
        shard streams in a different order still compare equal.
        ``catch_up_every`` periodically synchronizes replicas on engines
        that have them (no-op elsewhere).

        ``conn`` may also be a :class:`~repro.db.connection.
        ConnectionPool`: each statement then borrows a pooled connection
        (checkout/checkin) instead of holding one for the whole run.
        Pooled connections share a session, so the fingerprints are
        identical either way — the pooled-vs-dedicated differential
        test relies on that.
        """
        from repro.workload.harness import checked_out

        pool = conn if hasattr(conn, "checkout") else None
        engine = conn.engine
        catch_up = getattr(engine, "catch_up_replicas", None) or getattr(
            engine, "catch_up", None
        )

        def run_statement(sql, params):
            if pool is None:
                return conn.execute(sql, params)
            with checked_out(pool) as borrowed:
                result = borrowed.execute(sql, params)
                if result.kind == "select" and result.streaming:
                    result.rows  # drain before the connection goes back
                return result

        bookmarks: list[int] = [engine.last_commit_csn]
        out = []
        for i, (kind, sql, params) in enumerate(self.statements(count)):
            if kind == "asof":
                params = params[:-1] + (bookmarks[params[-1]],)
            result = run_statement(sql, params)
            if kind == "write":
                bookmarks.append(engine.last_commit_csn)
                out.append((kind, result.rowcount))
            else:
                out.append((kind, sorted(result.rows)))
            if catch_up is not None and catch_up_every and i % catch_up_every == (
                catch_up_every - 1
            ):
                catch_up()
        return out


class ProvenanceFiller:
    """Bulk-synthesizes provenance rows for the query-scaling bench (E8).

    Generates a realistic shape: for every synthetic transaction, one
    ``Executions`` row plus one event row, with a zipfian user/forum
    distribution so the paper's duplicate-hunting query has non-trivial
    selectivity.
    """

    def __init__(self, provenance_db: Database, event_table: str = "ForumEvents"):
        self.db = provenance_db
        self.event_table = event_table

    def fill(
        self,
        n_events: int,
        n_users: int = 1000,
        n_forums: int = 100,
        duplicate_every: int = 1000,
        seed: int = 0,
    ) -> int:
        """Insert ``n_events`` txn+event row pairs; returns rows written."""
        users = ZipfSampler(n_users, seed=seed)
        forums = ZipfSampler(n_forums, seed=seed + 1)
        txn = self.db.begin()
        written = 0
        try:
            for i in range(n_events):
                txn_name = f"TXN{i + 1_000_000}"
                user = f"U{users.sample()}"
                forum = f"F{forums.sample()}"
                kind = "Insert" if i % 3 else "Read"
                if duplicate_every and i % duplicate_every == duplicate_every - 1:
                    # Inject a duplicate pair for the detection query.
                    user, forum, kind = "U1", "F2", "Insert"
                self.db.insert_row(
                    "Executions",
                    {
                        "TxnId": txn_name,
                        "TxnNum": i + 1_000_000,
                        "Timestamp": i,
                        "HandlerName": "subscribeUser" if kind == "Insert" else "fetchSubscribers",
                        "ReqId": f"R{i + 1_000_000}",
                        "Metadata": "func:DB.insert" if kind == "Insert" else "func:DB.executeQuery",
                        "Isolation": "SERIALIZABLE",
                        "Status": "Committed",
                        "Csn": i + 1,
                        "SnapshotCsn": i,
                        "AuthUser": user,
                    },
                    txn=txn,
                )
                self.db.insert_row(
                    self.event_table,
                    {
                        "TxnId": txn_name,
                        "TxnNum": i + 1_000_000,
                        "Type": kind,
                        "Query": "synthetic",
                        "Csn": i + 1 if kind == "Insert" else None,
                        "Seq": i + 1,
                        "RowId": i + 1,
                        "UserId": user,
                        "Forum": forum,
                    },
                    txn=txn,
                )
                written += 2
            txn.commit()
        except Exception:
            txn.abort()
            raise
        return written
