"""Workload generation and measurement utilities for the benchmarks."""

from repro.workload.distributions import ZipfSampler, UniformSampler
from repro.workload.generators import (
    CheckoutWorkload,
    ForumWorkload,
    MediaWikiWorkload,
    ProfileWorkload,
    ProvenanceFiller,
    ShardedWorkload,
)
from repro.workload.harness import Timer, render_table, summarize_us

__all__ = [
    "CheckoutWorkload",
    "ForumWorkload",
    "MediaWikiWorkload",
    "ProfileWorkload",
    "ProvenanceFiller",
    "ShardedWorkload",
    "Timer",
    "UniformSampler",
    "ZipfSampler",
    "render_table",
    "summarize_us",
]
