"""Timing, reporting, and connection-pooling utilities for workloads."""

from __future__ import annotations

import time
from typing import Sequence


class Timer:
    """Context-manager stopwatch reporting microseconds."""

    def __init__(self):
        self.elapsed_ns = 0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed_ns = time.perf_counter_ns() - self._start

    @property
    def elapsed_us(self) -> float:
        return self.elapsed_ns / 1000.0

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_ns / 1_000_000.0

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_ns / 1_000_000_000.0


def summarize_us(samples_us: Sequence[float]) -> dict[str, float]:
    """Mean / p50 / p95 / p99 / min / max of latency samples."""
    if not samples_us:
        return {k: 0.0 for k in ("mean", "p50", "p95", "p99", "min", "max")}
    ordered = sorted(samples_us)

    def pct(p: float) -> float:
        index = min(len(ordered) - 1, int(round(p * (len(ordered) - 1))))
        return ordered[index]

    return {
        "mean": sum(ordered) / len(ordered),
        "p50": pct(0.50),
        "p95": pct(0.95),
        "p99": pct(0.99),
        "min": ordered[0],
        "max": ordered[-1],
    }


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Aligned text table for benchmark output."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    lines.extend(
        " | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells
    )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def checked_out(pool):
    """Borrow a connection from a :class:`~repro.db.connection.
    ConnectionPool` for one block: checkout on entry, checkin on exit.

    The workload generators use this per statement, so drivers reuse
    pooled connections instead of constructing one per statement. Thin
    alias for :meth:`~repro.db.connection.ConnectionPool.connection`,
    kept here so workload code needs no import from the db layer.
    """
    return pool.connection()


def format_us(us: float) -> str:
    if us >= 1_000_000:
        return f"{us / 1_000_000:.2f}s"
    if us >= 1_000:
        return f"{us / 1_000:.2f}ms"
    return f"{us:.1f}us"
