"""High-performance in-memory trace buffer.

§3.7: "we implement always-on tracing using a high-performance in-memory
buffer". Appends must be as close to free as possible because they sit on
the request hot path; draining to the provenance database happens out of
band. The buffer is a bounded ring: when full, it either signals that a
flush is needed or (in ``drop_oldest`` mode) overwrites the oldest
entries, counting the drops.
"""

from __future__ import annotations

from typing import Any


class TraceBuffer:
    """Bounded append-only event buffer with O(1) append."""

    def __init__(self, capacity: int = 65536, drop_oldest: bool = False):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.drop_oldest = drop_oldest
        self._items: list[Any] = []
        self.appended = 0
        self.dropped = 0
        self.flushes = 0

    def append(self, event: Any) -> bool:
        """Add one event; returns True when the buffer wants a flush."""
        self.appended += 1
        if len(self._items) >= self.capacity:
            if self.drop_oldest:
                self._items.pop(0)
                self.dropped += 1
            else:
                self._items.append(event)
                return True
        self._items.append(event)
        return len(self._items) >= self.capacity

    def extend(self, events: list[Any]) -> bool:
        need_flush = False
        for event in events:
            need_flush = self.append(event) or need_flush
        return need_flush

    def drain(self) -> list[Any]:
        """Remove and return everything buffered (oldest first)."""
        items = self._items
        self._items = []
        self.flushes += 1
        return items

    def peek(self) -> list[Any]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def high_water(self) -> bool:
        return len(self._items) >= self.capacity

    def stats(self) -> dict[str, int]:
        return {
            "buffered": len(self._items),
            "appended": self.appended,
            "dropped": self.dropped,
            "flushes": self.flushes,
            "capacity": self.capacity,
        }
