"""Interleaving enumeration for retroactive programming (§3.6).

"Naively, there are a prohibitively large number of possible ways to
interleave instructions among concurrent executions. However, since TROD
requires handlers only share state through transactions, TROD can identify
relevant transactions and enumerate possible re-execution orderings."

A request's execution is a sequence of transaction *steps*; an ordering of
a request set is an interleaving of those sequences. The naive count is the
multinomial coefficient; conflict-based pruning generates only canonical
representatives of Mazurkiewicz trace-equivalence classes: two adjacent
steps that do not conflict (no shared table with a write) commute, so any
interleaving can be normalized by sorting adjacent independent pairs by
request index — we enumerate exactly the sequences with no adjacent
independent inversion. Every equivalence class keeps at least one
representative (repeatedly sorting adjacent independent inversions
terminates), so pruning never loses a distinguishable behaviour at
transaction granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import factorial
from typing import Iterator, Sequence


@dataclass(frozen=True)
class TxnStep:
    """One transaction of one request, with its table footprint."""

    req_index: int
    ordinal: int  # 0-based position within its request
    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()

    def conflicts_with(self, other: "TxnStep") -> bool:
        """Steps conflict when one writes a table the other touches."""
        if self.writes & (other.reads | other.writes):
            return True
        if other.writes & (self.reads | self.writes):
            return True
        return False


def naive_interleaving_count(lengths: Sequence[int]) -> int:
    """Number of interleavings of sequences with the given lengths."""
    total = sum(lengths)
    count = factorial(total)
    for length in lengths:
        count //= factorial(length)
    return count


def enumerate_interleavings(
    seqs: Sequence[Sequence[TxnStep]],
    prune: bool = True,
    cap: int | None = None,
) -> tuple[list[list[int]], bool]:
    """All interleavings of ``seqs`` as lists of request indices.

    With ``prune`` (the default), only canonical representatives of
    conflict-equivalence classes are produced. ``cap`` bounds the output;
    the second return value reports whether the enumeration was truncated.
    """
    results: list[list[int]] = []
    truncated = False
    for ordering in iter_interleavings(seqs, prune=prune):
        if cap is not None and len(results) >= cap:
            truncated = True
            break
        results.append(ordering)
    return results, truncated


def iter_interleavings(
    seqs: Sequence[Sequence[TxnStep]], prune: bool = True
) -> Iterator[list[int]]:
    """Generator behind :func:`enumerate_interleavings`."""
    n = len(seqs)
    lengths = [len(s) for s in seqs]
    total = sum(lengths)
    if total == 0:
        yield []
        return
    positions = [0] * n
    chosen: list[int] = []
    prev_steps: list[TxnStep | None] = [None]

    def dfs() -> Iterator[list[int]]:
        if len(chosen) == total:
            yield list(chosen)
            return
        previous = prev_steps[-1]
        for req in range(n):
            pos = positions[req]
            if pos >= lengths[req]:
                continue
            step = seqs[req][pos]
            if (
                prune
                and previous is not None
                and previous.req_index > req
                and not previous.conflicts_with(step)
            ):
                # The swapped ordering (this step first) is equivalent and
                # already enumerated; skip the non-canonical twin.
                continue
            positions[req] += 1
            chosen.append(req)
            prev_steps.append(step)
            yield from dfs()
            prev_steps.pop()
            chosen.pop()
            positions[req] -= 1

    yield from dfs()


def steps_from_footprints(
    footprints: Sequence[Sequence[tuple[frozenset[str], frozenset[str]]]],
) -> list[list[TxnStep]]:
    """Build step sequences from per-request (reads, writes) footprints."""
    return [
        [
            TxnStep(
                req_index=req,
                ordinal=i,
                reads=frozenset(reads),
                writes=frozenset(writes),
            )
            for i, (reads, writes) in enumerate(request)
        ]
        for req, request in enumerate(footprints)
    ]
