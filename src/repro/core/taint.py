"""Workflow taint tracking and exfiltration detection (§4.2).

"Attackers can leverage RPCs between handlers to move stolen data
laterally through workflow executions and finally exfiltrate data over a
seemingly valid workflow. Since TROD traces the entire workflow of handler
invocations that serve each request, developers can query TROD provenance
data to track all subsequent changes made by a request that improperly
accessed sensitive data, and determine if the data is exfiltrated."

The tracker computes a fixpoint over request-level taint: a request is
tainted if it reads a sensitive (or tainted) table; every table a tainted
request writes becomes tainted. A tainted request that produces an
external side effect on a sink channel is a potential exfiltration flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tracer import Trod


@dataclass
class FlowReport:
    """One potential exfiltration flow."""

    req_id: str
    handler: str
    sources: list[str]  # sensitive/tainted tables this request read
    workflow: list[str]  # handler chain (RPC edges) of the request
    sinks: list[dict]  # side effects on sink channels
    hops: int  # 1 = direct read->sink; >1 = lateral movement via tables


@dataclass
class TaintState:
    tainted_tables: set[str] = field(default_factory=set)
    tainted_requests: dict[str, int] = field(default_factory=dict)  # req -> hop
    table_hop: dict[str, int] = field(default_factory=dict)


class ExfiltrationTracker:
    """Multi-hop taint analysis over the provenance database."""

    def __init__(self, trod: "Trod"):
        self._trod = trod

    # -- primitive queries ----------------------------------------------------

    def requests_reading(self, table: str) -> set[str]:
        event_table = self._trod.provenance.event_table_of(table)
        rows = self._trod.query(
            "SELECT DISTINCT E.ReqId AS ReqId"
            f" FROM Executions AS E, {event_table} AS F ON E.TxnId = F.TxnId"
            " WHERE F.Type = 'Read' AND E.ReqId IS NOT NULL"
        )
        return {row[0] for row in rows}

    def requests_writing(self, table: str) -> set[str]:
        event_table = self._trod.provenance.event_table_of(table)
        rows = self._trod.query(
            "SELECT DISTINCT E.ReqId AS ReqId"
            f" FROM Executions AS E, {event_table} AS F ON E.TxnId = F.TxnId"
            " WHERE F.Type IN ('Insert', 'Update', 'Delete')"
            " AND E.ReqId IS NOT NULL"
        )
        return {row[0] for row in rows}

    def tables_written_by(self, req_id: str) -> set[str]:
        out: set[str] = set()
        for table in self._trod.provenance.traced_tables():
            event_table = self._trod.provenance.event_table_of(table)
            count = self._trod.query(
                f"SELECT COUNT(*) FROM {event_table} AS F"
                " LEFT JOIN Executions AS E ON F.TxnId = E.TxnId"
                " WHERE E.ReqId = ? AND F.Type IN ('Insert', 'Update', 'Delete')",
                (req_id,),
            ).scalar()
            if count:
                out.add(table.lower())
        return out

    def tables_read_by(self, req_id: str) -> set[str]:
        out: set[str] = set()
        for table in self._trod.provenance.traced_tables():
            event_table = self._trod.provenance.event_table_of(table)
            count = self._trod.query(
                f"SELECT COUNT(*) FROM {event_table} AS F"
                " LEFT JOIN Executions AS E ON F.TxnId = E.TxnId"
                " WHERE E.ReqId = ? AND F.Type = 'Read'",
                (req_id,),
            ).scalar()
            if count:
                out.add(table.lower())
        return out

    def workflow_chain(self, req_id: str) -> list[str]:
        """Root handler followed by RPC callees, in call order."""
        rows = self._trod.query(
            "SELECT HandlerName FROM Requests WHERE ReqId = ?", (req_id,)
        ).rows
        chain = [rows[0][0]] if rows else []
        edges = self._trod.query(
            "SELECT Callee FROM WorkflowEdges WHERE ReqId = ? ORDER BY Seq",
            (req_id,),
        ).rows
        chain.extend(edge[0] for edge in edges)
        return chain

    def side_effects_of(self, req_id: str, channels: Iterable[str] | None = None) -> list[dict]:
        rows = self._trod.query(
            "SELECT Channel, Payload, HandlerName, Timestamp FROM SideEffects"
            " WHERE ReqId = ? ORDER BY Timestamp",
            (req_id,),
        ).as_dicts()
        if channels is not None:
            wanted = {c.lower() for c in channels}
            rows = [r for r in rows if r["Channel"].lower() in wanted]
        return rows

    # -- taint fixpoint -----------------------------------------------------------

    def compute_taint(self, sensitive_tables: Iterable[str]) -> TaintState:
        """Propagate taint through read/write edges until fixpoint."""
        self._trod.flush()
        state = TaintState()
        for table in sensitive_tables:
            key = table.lower()
            state.tainted_tables.add(key)
            state.table_hop[key] = 0
        changed = True
        while changed:
            changed = False
            for table in sorted(state.tainted_tables):
                hop = state.table_hop[table] + 1
                for req_id in sorted(self.requests_reading(table)):
                    if req_id not in state.tainted_requests or (
                        hop < state.tainted_requests[req_id]
                    ):
                        state.tainted_requests[req_id] = hop
                        changed = True
            for req_id, hop in list(state.tainted_requests.items()):
                for table in sorted(self.tables_written_by(req_id)):
                    if table not in state.tainted_tables or (
                        hop < state.table_hop.get(table, 1 << 30)
                    ):
                        state.tainted_tables.add(table)
                        state.table_hop[table] = hop
                        changed = True
        return state

    def find_flows(
        self,
        sensitive_tables: Iterable[str],
        sink_channels: Iterable[str] = ("export", "email", "http"),
    ) -> list[FlowReport]:
        """Exfiltration candidates: tainted requests hitting sink channels."""
        sensitive = [t.lower() for t in sensitive_tables]
        state = self.compute_taint(sensitive)
        flows: list[FlowReport] = []
        for req_id in sorted(state.tainted_requests):
            sinks = self.side_effects_of(req_id, channels=sink_channels)
            if not sinks:
                continue
            reads = self.tables_read_by(req_id)
            sources = sorted(t for t in reads if t in state.tainted_tables)
            handler = self._trod.provenance.request_row(req_id)["HandlerName"]
            flows.append(
                FlowReport(
                    req_id=req_id,
                    handler=handler,
                    sources=sources,
                    workflow=self.workflow_chain(req_id),
                    sinks=sinks,
                    hops=state.tainted_requests[req_id],
                )
            )
        return flows

    def track_request(self, req_id: str) -> dict:
        """Everything one request touched — §4.2's forensic starting point."""
        self._trod.flush()
        return {
            "request": self._trod.provenance.request_row(req_id),
            "workflow": self.workflow_chain(req_id),
            "tables_read": sorted(self.tables_read_by(req_id)),
            "tables_written": sorted(self.tables_written_by(req_id)),
            "side_effects": self.side_effects_of(req_id),
            "transactions": self._trod.provenance.txns_of_request(
                req_id, committed_only=False
            ),
        }
