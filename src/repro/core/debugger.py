"""Declarative debugging (§3.3, §3.4).

Raw SQL over the provenance database plus canned analyses for the
questions the paper walks through: who inserted these duplicated rows,
what did a request execute, and which concurrent executions updated the
database between a request's transactions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.db.result import ResultSet
from repro.db.types import sql_literal
from repro.errors import ProvenanceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tracer import Trod


class Debugger:
    """Query-level debugging interface."""

    def __init__(self, trod: "Trod"):
        self._trod = trod

    # -- raw SQL -----------------------------------------------------------

    def sql(self, query: str, params: tuple = ()) -> ResultSet:
        return self._trod.query(query, params)

    # -- canned analyses ------------------------------------------------------

    def find_writers(
        self,
        table: str,
        kind: str = "Insert",
        **column_filters: Any,
    ) -> ResultSet:
        """Which requests wrote matching rows — the paper's §3.3 query.

        ``find_writers("forum_sub", UserId="U1", Forum="F2")`` builds and
        runs exactly the query shown in the paper (modulo the generated
        filter list) and returns (Timestamp, ReqId, HandlerName, TxnId)
        rows in timestamp order.
        """
        event_table = self._trod.provenance.event_table_of(table)
        filters = [f"F.Type = {sql_literal(kind)}"]
        for column, value in column_filters.items():
            filters.append(f"F.{column} = {sql_literal(value)}")
        query = (
            "SELECT Timestamp, ReqId, HandlerName, E.TxnId AS TxnId\n"
            f"FROM Executions as E, {event_table} as F\n"
            "ON E.TxnId = F.TxnId\n"
            f"WHERE {' AND '.join(filters)}\n"
            "ORDER BY Timestamp ASC"
        )
        return self.sql(query)

    def duplicate_inserts(self, table: str, key_columns: list[str]) -> list[dict]:
        """Key values inserted more than once, with the inserting requests.

        The first debugging step for MDL-59854 / MW-44325 style bugs.
        """
        event_table = self._trod.provenance.event_table_of(table)
        keys = ", ".join(f"F.{c}" for c in key_columns)
        rows = self.sql(
            f"SELECT {keys}, COUNT(*) AS n FROM {event_table} AS F"
            " WHERE F.Type = 'Insert'"
            f" GROUP BY {keys} HAVING COUNT(*) > 1"
        ).as_dicts()
        out = []
        for row in rows:
            filters = {c: row[c] for c in key_columns}
            writers = self.find_writers(table, kind="Insert", **filters).as_dicts()
            out.append({"key": filters, "count": row["n"], "writers": writers})
        return out

    def request_timeline(self, req_id: str) -> list[dict]:
        """Every transaction a request executed, in commit order."""
        return self._trod.provenance.txns_of_request(req_id, committed_only=False)

    def requests(self, status: str | None = None) -> ResultSet:
        if status is None:
            return self.sql("SELECT * FROM Requests ORDER BY StartTs")
        return self.sql(
            "SELECT * FROM Requests WHERE Status = ? ORDER BY StartTs", (status,)
        )

    def failed_requests(self) -> list[dict]:
        return self.requests(status="Error").as_dicts()

    def interleaved_writes(self, req_id: str) -> list[dict]:
        """Writes by *other* requests between this request's transactions.

        §3.5: "TROD makes it easy for developers to query which concurrent
        executions may have updated the database between transactions."
        Each returned row is a write event, annotated with ``_table`` and
        positioned strictly between this request's first and last commits.
        """
        self._trod.flush()
        txns = self._trod.provenance.txns_of_request(req_id)
        if not txns:
            raise ProvenanceError(f"request {req_id!r} has no committed txns")
        first_csn = txns[0]["Csn"]
        last_csn = txns[-1]["Csn"]
        if first_csn == last_csn:
            return []
        return self._trod.provenance.writes_between(
            first_csn, last_csn - 1, exclude_req=req_id
        )

    def workflow(self, req_id: str) -> list[dict]:
        """The RPC edges of one request's workflow, in call order."""
        return self.sql(
            "SELECT Caller, Callee, Seq, Timestamp FROM WorkflowEdges"
            " WHERE ReqId = ? ORDER BY Seq",
            (req_id,),
        ).as_dicts()

    def transactions_touching(self, table: str, kind: str | None = None) -> ResultSet:
        """All transactions that produced events on ``table``."""
        event_table = self._trod.provenance.event_table_of(table)
        where = "WHERE F.Type != 'Snapshot'"
        params: tuple = ()
        if kind is not None:
            where = "WHERE F.Type = ?"
            params = (kind,)
        return self.sql(
            "SELECT DISTINCT E.TxnId AS TxnId, E.ReqId AS ReqId,"
            " E.HandlerName AS HandlerName, E.Csn AS Csn"
            f" FROM Executions AS E, {event_table} AS F ON E.TxnId = F.TxnId"
            f" {where} ORDER BY Csn",
            params,
        )
