"""TROD: the transaction-oriented debugger (the paper's contribution).

Facade: create a :class:`Trod`, attach it to a runtime, and use

* ``trod.debugger`` — declarative debugging over provenance (§3.3/§3.4)
* ``trod.replayer`` — faithful bug replay (§3.5)
* ``trod.retroactive`` — retroactive programming (§3.6)
* ``trod.security`` / ``trod.taint`` — security forensics (§4.2)
"""

from repro.core.buffer import TraceBuffer
from repro.core.debugger import Debugger
from repro.core.events import (
    DataEvent,
    RequestEvent,
    SideEffectEvent,
    TxnEvent,
    WorkflowEdgeEvent,
)
from repro.core.orderings import enumerate_interleavings, naive_interleaving_count
from repro.core.privacy import PrivacyManager, RedactionReport
from repro.core.profiling import PerformanceProfiler
from repro.core.provenance import ProvenanceStore
from repro.core.quality import DataQualityMonitor, QualityViolation
from repro.core.replay import BreakpointInfo, ReplayEngine, ReplayResult
from repro.core.retroactive import (
    OrderingOutcome,
    RetroactiveEngine,
    RetroactiveResult,
)
from repro.core.security import AccessControlChecker, PatternViolation
from repro.core.taint import ExfiltrationTracker, FlowReport
from repro.core.tracer import Trod

__all__ = [
    "AccessControlChecker",
    "BreakpointInfo",
    "DataEvent",
    "DataQualityMonitor",
    "Debugger",
    "PerformanceProfiler",
    "PrivacyManager",
    "QualityViolation",
    "RedactionReport",
    "ExfiltrationTracker",
    "FlowReport",
    "OrderingOutcome",
    "PatternViolation",
    "ProvenanceStore",
    "ReplayEngine",
    "ReplayResult",
    "RequestEvent",
    "RetroactiveEngine",
    "RetroactiveResult",
    "SideEffectEvent",
    "TraceBuffer",
    "Trod",
    "TxnEvent",
    "WorkflowEdgeEvent",
    "enumerate_interleavings",
    "naive_interleaving_count",
]
