"""Retroactive programming (§3.6).

Re-executes past requests using *modified* handler code over a past
database snapshot. Unlike replay, the transaction log cannot be re-applied
— the patched code's computations and effects may change — so TROD:

1. restores a development database (from provenance) to the snapshot
   before the earliest involved request;
2. runs a **pilot**: each request alone against a fresh copy of that
   snapshot with the patched code, to discover the new transaction
   boundaries and their table footprints;
3. enumerates candidate re-execution orderings of those transactions,
   pruning interleavings that only swap non-conflicting steps
   (:mod:`repro.core.orderings`);
4. executes every ordering on a fresh snapshot under the deterministic
   scheduler, recording outputs, errors, final table states, optional
   invariant violations, and (optionally) a fresh TROD trace of the
   re-execution — the bottom half of the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.core.orderings import (
    TxnStep,
    enumerate_interleavings,
    naive_interleaving_count,
)
from repro.db.database import Database
from repro.errors import RetroactiveError
from repro.runtime.handlers import HandlerRegistry
from repro.runtime.workflow import Request, Runtime

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tracer import Trod


@dataclass
class RetroRequestOutcome:
    """One request's result within one tested ordering."""

    req_id: str
    handler: str
    ok: bool
    output_repr: str | None
    error: str | None
    original_output: str | None
    original_error: str | None

    @property
    def changed(self) -> bool:
        """Did the patched code behave differently than the original run?"""
        if self.ok:
            return self.output_repr != self.original_output
        return self.error != self.original_error


@dataclass
class OrderingOutcome:
    """Everything observed while testing one candidate ordering."""

    index: int
    schedule: list[int]
    requests: list[RetroRequestOutcome] = field(default_factory=list)
    followups: list[RetroRequestOutcome] = field(default_factory=list)
    final_state: dict[str, list[tuple]] = field(default_factory=dict)
    invariant_violations: list[str] = field(default_factory=list)
    side_effect_count: int = 0

    @property
    def ok(self) -> bool:
        """No handler errors and no invariant violations anywhere."""
        all_requests = self.requests + self.followups
        return all(r.ok for r in all_requests) and not self.invariant_violations


@dataclass
class RetroactiveResult:
    """Aggregate of a retroactive programming run."""

    req_ids: list[str]
    patched: list[str]
    base_csn: int
    naive_orderings: int
    explored: int
    truncated: bool
    outcomes: list[OrderingOutcome]

    @property
    def all_ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failing(self) -> list[OrderingOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def states_agree(self) -> bool:
        """Did every ordering converge to the same final database state?"""
        if not self.outcomes:
            return True
        first = self.outcomes[0].final_state
        return all(o.final_state == first for o in self.outcomes[1:])

    def summary(self) -> str:
        lines = [
            f"retroactive run over {self.req_ids} "
            f"(patched: {', '.join(self.patched) or 'none'})",
            f"orderings: naive={self.naive_orderings} "
            f"explored={self.explored}"
            + (" (truncated)" if self.truncated else ""),
            f"all orderings pass: {self.all_ok}; "
            f"states agree: {self.states_agree()}",
        ]
        for outcome in self.failing:
            problems = [r.error for r in outcome.requests + outcome.followups if r.error]
            problems.extend(outcome.invariant_violations)
            lines.append(f"  ordering {outcome.schedule}: {problems}")
        return "\n".join(lines)


class _FootprintCollector:
    """Database observer recording per-transaction table footprints."""

    def __init__(self):
        self.footprints: list[tuple[frozenset[str], frozenset[str]]] = []

    def txn_committed(self, txn, csn, changes) -> None:
        reads = frozenset(r.table for r in txn.read_records)
        writes = frozenset(c.table for c in changes)
        self.footprints.append((reads, writes))


class RetroactiveEngine:
    """Tests modified code against past events."""

    def __init__(self, trod: "Trod"):
        self.trod = trod

    def run(
        self,
        req_ids: Sequence[str],
        patches: dict[str, Callable[..., Any]] | None = None,
        registry: HandlerRegistry | None = None,
        orderings: str | Sequence[Sequence[int]] = "pruned",
        max_orderings: int = 64,
        followups: Sequence[str] = (),
        invariant: Callable[[Database], list[str]] | None = None,
    ) -> RetroactiveResult:
        """Re-execute ``req_ids`` with patched handlers over a past snapshot.

        ``patches`` maps handler names to replacement functions (or pass a
        full ``registry``). ``orderings`` is ``'pruned'`` (conflict-based
        reduction), ``'all'`` (every interleaving), or an explicit list of
        schedules. ``followups`` are requests re-executed serially *after*
        each ordering (the paper's R3). ``invariant`` is called on the dev
        database after each ordering and returns violation strings.
        """
        self.trod.flush()
        provenance = self.trod.provenance
        if not req_ids:
            raise RetroactiveError("req_ids must be non-empty")
        if registry is None:
            source = self.trod.runtime.registry if self.trod.runtime else None
            if source is None:
                raise RetroactiveError("no handler registry available")
            registry = source.patched(**(patches or {}))
        elif patches:
            registry = registry.patched(**patches)

        requests = [self._request_of(r) for r in req_ids]
        followup_requests = [self._request_of(r) for r in followups]
        base_csn = self._base_csn(req_ids)

        # Pilot: discover the patched code's transaction footprints.
        pilots: list[list[TxnStep]] = []
        for req_index, request in enumerate(requests):
            footprints = self._pilot(request, registry, base_csn)
            pilots.append(
                [
                    TxnStep(
                        req_index=req_index,
                        ordinal=i,
                        reads=reads,
                        writes=writes,
                    )
                    for i, (reads, writes) in enumerate(footprints)
                ]
            )

        lengths = [len(p) for p in pilots]
        naive = naive_interleaving_count(lengths)
        if isinstance(orderings, str):
            if orderings not in ("pruned", "all"):
                raise RetroactiveError(f"unknown orderings mode {orderings!r}")
            schedules, truncated = enumerate_interleavings(
                pilots, prune=(orderings == "pruned"), cap=max_orderings
            )
        else:
            schedules = [list(s) for s in orderings]
            truncated = False

        outcomes = []
        for index, schedule in enumerate(schedules):
            outcomes.append(
                self._test_ordering(
                    index,
                    schedule,
                    requests,
                    followup_requests,
                    registry,
                    base_csn,
                    invariant,
                )
            )
        return RetroactiveResult(
            req_ids=list(req_ids),
            patched=sorted(patches) if patches else [],
            base_csn=base_csn,
            naive_orderings=naive,
            explored=len(outcomes),
            truncated=truncated,
            outcomes=outcomes,
        )

    def hunt(
        self,
        req_ids: Sequence[str],
        invariant: Callable[[Database], list[str]] | None = None,
        max_orderings: int = 64,
    ) -> OrderingOutcome | None:
        """Find an interleaving of past requests that breaks the CURRENT code.

        Retroactive programming with no patches: re-execute the original
        handlers over the snapshot under every pruned ordering, and return
        the first outcome with a handler error or invariant violation
        (None when every ordering is clean). This turns "you have to be
        pretty fast and pretty lucky to reproduce this issue" into an
        enumeration.
        """
        result = self.run(
            req_ids, invariant=invariant, max_orderings=max_orderings
        )
        failing = result.failing
        return failing[0] if failing else None

    # ------------------------------------------------------------------

    def _request_of(self, req_id: str) -> Request:
        handler, args, kwargs, auth_user = self.trod.provenance.request_args(req_id)
        return Request(
            handler=handler,
            args=args,
            kwargs=kwargs,
            req_id=req_id,
            auth_user=auth_user,
        )

    def _base_csn(self, req_ids: Sequence[str]) -> int:
        """Snapshot right before the earliest involved transaction."""
        bases = []
        for req_id in req_ids:
            txns = self.trod.provenance.txns_of_request(req_id)
            if txns:
                bases.append(txns[0]["SnapshotCsn"])
        return min(bases) if bases else self.trod.base_csn

    def _fresh_dev_db(self, base_csn: int, name: str) -> Database:
        dev = Database(name=name)
        self.trod.provenance.restore_into(dev, base_csn)
        return dev

    def _pilot(
        self, request: Request, registry: HandlerRegistry, base_csn: int
    ) -> list[tuple[frozenset[str], frozenset[str]]]:
        dev = self._fresh_dev_db(base_csn, name=f"pilot-{request.req_id}")
        dev.track_reads = True
        collector = _FootprintCollector()
        dev.add_observer(collector)
        runtime = Runtime(dev, registry=registry, seed=self._seed())
        runtime.execute_request(
            Request(
                handler=request.handler,
                args=request.args,
                kwargs=dict(request.kwargs),
                req_id=request.req_id,
                auth_user=request.auth_user,
            )
        )
        return collector.footprints

    def _seed(self) -> int:
        return self.trod.runtime.seed if self.trod.runtime else 0

    def _test_ordering(
        self,
        index: int,
        schedule: list[int],
        requests: list[Request],
        followups: list[Request],
        registry: HandlerRegistry,
        base_csn: int,
        invariant: Callable[[Database], list[str]] | None,
    ) -> OrderingOutcome:
        dev = self._fresh_dev_db(base_csn, name=f"retro-{index}")
        runtime = Runtime(dev, registry=registry, seed=self._seed())
        fresh = [
            Request(
                handler=r.handler,
                args=r.args,
                kwargs=dict(r.kwargs),
                req_id=r.req_id,
                auth_user=r.auth_user,
            )
            for r in requests
        ]
        results = runtime.run_concurrent(fresh, schedule=schedule)
        outcome = OrderingOutcome(index=index, schedule=schedule)
        for result in results:
            outcome.requests.append(self._outcome_of(result))
        for followup in followups:
            result = runtime.execute_request(
                Request(
                    handler=followup.handler,
                    args=followup.args,
                    kwargs=dict(followup.kwargs),
                    req_id=followup.req_id,
                    auth_user=followup.auth_user,
                )
            )
            outcome.followups.append(self._outcome_of(result))
        for table in self.trod.provenance.traced_tables():
            rows = [values for _rid, values in dev.store(table).scan(None)]
            outcome.final_state[table.lower()] = sorted(rows)
        if invariant is not None:
            outcome.invariant_violations = list(invariant(dev))
        outcome.side_effect_count = len(runtime.side_effects)
        return outcome

    def _outcome_of(self, result) -> RetroRequestOutcome:
        original = self.trod.provenance.request_row(result.req_id)
        return RetroRequestOutcome(
            req_id=result.req_id,
            handler=result.handler,
            ok=result.ok,
            output_repr=repr(result.output) if result.ok else None,
            error=result.error,
            original_output=original["Output"],
            original_error=original["Error"],
        )
