"""Performance profiling extension (§5 "Debugging Performance and Data
Issues").

"TROD can similarly augment its execution tracing to record performance
metrics such as latencies of individual handlers and end-to-end
executions, and store this information in a structured and queryable
format."

The profiler is an optional second set of runtime hooks / database
observers that measures wall-clock durations (performance is inherently
non-deterministic, so these live in their own ``PerfEvents`` table and
never participate in replay) and exposes APM-style analyses: slowest
requests, per-handler latency summaries, per-transaction-label costs.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

from repro.db.result import ResultSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tracer import Trod


class PerformanceProfiler:
    """Latency recording over the same interposition points TROD uses."""

    def __init__(self, trod: "Trod"):
        self._trod = trod
        self._pending: list[dict[str, Any]] = []
        self._request_starts: dict[int, int] = {}  # id(ctx) -> ns
        self._txn_starts: dict[int, int] = {}  # txn_id -> ns
        self.enabled = False
        self._ensure_table()

    def _ensure_table(self) -> None:
        db = self._trod.provenance.db
        if not db.catalog.has_table("PerfEvents"):
            db.execute(
                "CREATE TABLE PerfEvents ("
                " ReqId TEXT, HandlerName TEXT, Kind TEXT NOT NULL,"
                " Label TEXT, DurationUs FLOAT NOT NULL,"
                " Timestamp INTEGER)"
            )
            db.create_index("ix_perf_req", "PerfEvents", ["ReqId"])

    # -- lifecycle -----------------------------------------------------------

    def attach(self) -> "PerformanceProfiler":
        if self.enabled:
            return self
        if self._trod.runtime is None:
            raise RuntimeError("attach TROD to a runtime before profiling")
        self._trod.runtime.add_hook(self)
        self._trod.database.add_observer(self)
        self.enabled = True
        return self

    def detach(self) -> None:
        if not self.enabled:
            return
        if self._trod.runtime is not None:
            self._trod.runtime.remove_hook(self)
        self._trod.database.remove_observer(self)
        self.enabled = False

    # -- runtime hooks ------------------------------------------------------------

    def request_started(self, ctx: Any, request: Any) -> None:
        self._request_starts[id(ctx)] = time.perf_counter_ns()

    def request_finished(self, ctx: Any, result: Any) -> None:
        started = self._request_starts.pop(id(ctx), None)
        if started is None:
            return
        self._pending.append(
            {
                "ReqId": result.req_id,
                "HandlerName": result.handler,
                "Kind": "request",
                "Label": "end-to-end",
                "DurationUs": (time.perf_counter_ns() - started) / 1000.0,
                "Timestamp": self._trod.clock.now(),
            }
        )

    def handler_called(self, parent_ctx: Any, child_ctx: Any) -> None:
        child_ctx._perf_start_ns = time.perf_counter_ns()

    def handler_returned(self, child_ctx: Any, output: Any) -> None:
        started = getattr(child_ctx, "_perf_start_ns", None)
        if started is None:
            return
        self._pending.append(
            {
                "ReqId": child_ctx.req_id,
                "HandlerName": child_ctx.handler_name,
                "Kind": "handler",
                "Label": "rpc",
                "DurationUs": (time.perf_counter_ns() - started) / 1000.0,
                "Timestamp": self._trod.clock.now(),
            }
        )

    # -- database observer ------------------------------------------------------------

    def txn_began(self, txn: Any) -> None:
        self._txn_starts[txn.txn_id] = time.perf_counter_ns()

    def txn_committed(self, txn: Any, csn: int, changes: Any) -> None:
        self._finish_txn(txn)

    def txn_aborted(self, txn: Any) -> None:
        self._finish_txn(txn)

    def _finish_txn(self, txn: Any) -> None:
        started = self._txn_starts.pop(txn.txn_id, None)
        if started is None:
            return
        self._pending.append(
            {
                "ReqId": txn.info.get("req_id"),
                "HandlerName": txn.info.get("handler"),
                "Kind": "txn",
                "Label": txn.info.get("label") or txn.name,
                "DurationUs": (time.perf_counter_ns() - started) / 1000.0,
                "Timestamp": self._trod.clock.now(),
            }
        )

    # -- persistence & queries ------------------------------------------------------------

    def flush(self) -> int:
        if not self._pending:
            return 0
        db = self._trod.provenance.db
        txn = db.begin()
        try:
            for record in self._pending:
                db.insert_row("PerfEvents", record, txn=txn)
            txn.commit()
        except Exception:
            txn.abort()
            raise
        count = len(self._pending)
        self._pending = []
        return count

    def query(self, sql: str, params: tuple = ()) -> ResultSet:
        self.flush()
        return self._trod.provenance.db.execute(sql, params)

    def slowest_requests(self, limit: int = 10) -> list[dict]:
        return self.query(
            "SELECT ReqId, HandlerName, DurationUs FROM PerfEvents"
            " WHERE Kind = 'request' ORDER BY DurationUs DESC LIMIT ?",
            (limit,),
        ).as_dicts()

    def handler_stats(self) -> list[dict]:
        """Per-handler request latency summary (count / mean / max)."""
        return self.query(
            "SELECT HandlerName, COUNT(*) AS n, AVG(DurationUs) AS mean_us,"
            " MAX(DurationUs) AS max_us FROM PerfEvents"
            " WHERE Kind = 'request' GROUP BY HandlerName"
            " ORDER BY mean_us DESC"
        ).as_dicts()

    def txn_label_stats(self) -> list[dict]:
        """Which transaction (by func label) costs the most overall."""
        return self.query(
            "SELECT Label, COUNT(*) AS n, AVG(DurationUs) AS mean_us,"
            " SUM(DurationUs) AS total_us FROM PerfEvents"
            " WHERE Kind = 'txn' GROUP BY Label ORDER BY total_us DESC"
        ).as_dicts()

    def request_breakdown(self, req_id: str) -> list[dict]:
        """Every measured span of one request, slowest first."""
        return self.query(
            "SELECT Kind, Label, HandlerName, DurationUs FROM PerfEvents"
            " WHERE ReqId = ? ORDER BY DurationUs DESC",
            (req_id,),
        ).as_dicts()
