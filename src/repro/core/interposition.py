"""The TROD interposition layer (§3.1, §3.4).

One object implements both interposition surfaces:

* **database observer** — ``txn_began`` / ``statement_executed`` /
  ``txn_committed`` / ``txn_aborted`` / ``table_created``, capturing
  transaction metadata, read sets (from the executor's read records), and
  write sets (from CDC at commit, so aborted work never produces write
  provenance);
* **runtime hooks** — ``request_started`` / ``request_finished`` /
  ``handler_called`` / ``side_effect``, capturing request lifecycles and
  workflow edges.

Every hook self-times with ``perf_counter_ns`` and accumulates into
``overhead_ns`` — that counter divided by the request count is the
"<100µs per request" figure of §3.7, which benchmark E7 reports.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

from repro.core.events import (
    DataEvent,
    RequestEvent,
    SideEffectEvent,
    TxnEvent,
    WorkflowEdgeEvent,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tracer import Trod
    from repro.db.cdc import ChangeRecord
    from repro.db.database import StatementTrace
    from repro.db.schema import TableSchema
    from repro.db.txn.manager import Transaction


class InterpositionLayer:
    """Builds trace events from database and runtime hook invocations."""

    def __init__(self, trod: "Trod"):
        self._trod = trod
        #: id(txn) -> list of StatementTrace, for attaching query text to
        #: the CDC records the commit will emit. Keyed by object identity,
        #: not txn id: on a sharded engine each shard assigns its own txn
        #: ids, and branches of different global transactions may collide.
        self._txn_statements: dict[int, list["StatementTrace"]] = {}
        self._edge_seq: dict[str, int] = {}
        self.overhead_ns = 0
        self.requests_traced = 0
        self.events_emitted = 0

    # ------------------------------------------------------------------
    # Database observer interface
    # ------------------------------------------------------------------

    def txn_began(self, txn: "Transaction") -> None:
        start = time.perf_counter_ns()
        txn.info["ts"] = self._trod.clock.tick()
        self._txn_statements[id(txn)] = []
        self.overhead_ns += time.perf_counter_ns() - start

    def statement_executed(self, txn: "Transaction", trace: "StatementTrace") -> None:
        start = time.perf_counter_ns()
        statements = self._txn_statements.setdefault(id(txn), [])
        statements.append(trace)
        # Read provenance is emitted immediately (writes wait for commit).
        for read in trace.reads:
            values = None
            if read.values is not None:
                schema = self._trod.database.catalog.get(read.table)
                values = dict(zip(schema.column_names, read.values))
            self._emit(
                DataEvent(
                    txn_num=txn.txn_id,
                    txn_name=txn.name,
                    table=read.table,
                    kind="Read",
                    query=read.query,
                    row_id=read.row_id,
                    values=values,
                    csn=None,
                )
            )
        self.overhead_ns += time.perf_counter_ns() - start

    def txn_committed(
        self, txn: "Transaction", csn: int, changes: list["ChangeRecord"]
    ) -> None:
        start = time.perf_counter_ns()
        self._emit(self._txn_event(txn, status="Committed", csn=csn))
        statements = self._txn_statements.pop(id(txn), [])
        for change in changes:
            schema = self._trod.database.catalog.get(change.table)
            values = (
                dict(zip(schema.column_names, change.values))
                if change.values is not None
                else None
            )
            self._emit(
                DataEvent(
                    txn_num=txn.txn_id,
                    txn_name=txn.name,
                    table=change.table,
                    kind=change.op.capitalize(),
                    query=self._query_of(statements, change),
                    row_id=change.row_id,
                    values=values,
                    csn=csn,
                )
            )
        self.overhead_ns += time.perf_counter_ns() - start

    def txn_aborted(self, txn: "Transaction") -> None:
        start = time.perf_counter_ns()
        self._txn_statements.pop(id(txn), None)
        self._emit(self._txn_event(txn, status="Aborted", csn=None))
        self.overhead_ns += time.perf_counter_ns() - start

    def table_created(self, schema: "TableSchema") -> None:
        # New table while attached: register it for event capture.
        self._trod.on_table_created(schema)

    def _txn_event(self, txn: "Transaction", status: str, csn: int | None) -> TxnEvent:
        info = txn.info
        return TxnEvent(
            txn_num=txn.txn_id,
            txn_name=txn.name,
            ts=info.get("ts", 0),
            req_id=info.get("req_id"),
            handler=info.get("handler"),
            label=info.get("label", ""),
            isolation=txn.isolation.value,
            status=status,
            csn=csn,
            snapshot_csn=txn.snapshot_csn,
            auth_user=info.get("auth_user"),
        )

    @staticmethod
    def _query_of(statements: list["StatementTrace"], change: "ChangeRecord") -> str:
        for trace in statements:
            for op, table, row_id in trace.writes:
                if op == change.op and table == change.table and row_id == change.row_id:
                    return trace.sql
        return ""

    # ------------------------------------------------------------------
    # Runtime hook interface
    # ------------------------------------------------------------------

    def request_started(self, ctx: Any, request: Any) -> None:
        start = time.perf_counter_ns()
        ctx._trod_start_ts = self._trod.clock.tick()
        ctx._trod_request = request
        self._edge_seq[ctx.req_id] = 0
        self.overhead_ns += time.perf_counter_ns() - start

    def request_finished(self, ctx: Any, result: Any) -> None:
        start = time.perf_counter_ns()
        request = getattr(ctx, "_trod_request", None)
        self._emit(
            RequestEvent(
                req_id=result.req_id,
                handler=result.handler,
                args=tuple(request.args) if request is not None else (),
                kwargs=dict(request.kwargs) if request is not None else {},
                auth_user=ctx.auth_user,
                start_ts=getattr(ctx, "_trod_start_ts", 0),
                end_ts=self._trod.clock.tick(),
                status="OK" if result.ok else "Error",
                output_repr=repr(result.output) if result.ok else None,
                error=result.error,
            )
        )
        self.requests_traced += 1
        self.overhead_ns += time.perf_counter_ns() - start

    def handler_called(self, parent_ctx: Any, child_ctx: Any) -> None:
        start = time.perf_counter_ns()
        seq = self._edge_seq.get(parent_ctx.req_id, 0) + 1
        self._edge_seq[parent_ctx.req_id] = seq
        self._emit(
            WorkflowEdgeEvent(
                req_id=parent_ctx.req_id,
                caller=parent_ctx.handler_name,
                callee=child_ctx.handler_name,
                seq=seq,
                ts=self._trod.clock.tick(),
            )
        )
        self.overhead_ns += time.perf_counter_ns() - start

    def side_effect(self, ctx: Any, effect: Any) -> None:
        start = time.perf_counter_ns()
        self._emit(
            SideEffectEvent(
                req_id=effect.req_id,
                handler=effect.handler,
                channel=effect.channel,
                payload_repr=repr(effect.payload),
                ts=effect.ts,
            )
        )
        self.overhead_ns += time.perf_counter_ns() - start

    # ------------------------------------------------------------------

    def _emit(self, event: Any) -> None:
        self.events_emitted += 1
        if self._trod.buffer.append(event):
            self._trod.request_flush()

    @property
    def overhead_us_per_request(self) -> float:
        if self.requests_traced == 0:
            return 0.0
        return self.overhead_ns / 1000.0 / self.requests_traced
