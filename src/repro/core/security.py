"""Access-control pattern checking (§4.2).

The paper demonstrates checking Near & Jackson's access-control patterns
over provenance with plain SQL. Two patterns are built in — **User
Profiles** (only users themselves may update their profiles; the paper's
query is generated verbatim) and **Authentication** (only logged-in users
may read certain objects) — and arbitrary custom patterns can be
registered as parameterized SQL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.db.result import ResultSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tracer import Trod


@dataclass(frozen=True)
class PatternViolation:
    """One access-control violation found in the trace."""

    pattern: str
    req_id: str | None
    handler: str | None
    timestamp: int | None
    details: dict[str, Any] = field(default_factory=dict)


class AccessControlChecker:
    """SQL-driven detection of access-control violations."""

    def __init__(self, trod: "Trod"):
        self._trod = trod
        self._patterns: dict[str, tuple[str, tuple]] = {}

    # -- built-in patterns ---------------------------------------------------

    def user_profiles(
        self,
        table: str,
        owner_column: str = "UserName",
        updater_column: str = "UpdatedBy",
    ) -> list[PatternViolation]:
        """The paper's User Profiles query: updates not made by the owner.

        Generates exactly the §4.2 query over the table's event log::

            SELECT Timestamp, ReqId, HandlerName
            FROM Executions as E, ProfileEvents as P ON E.TxnId = P.TxnId
            WHERE P.UserName != P.UpdatedBy AND P.Type = 'Update'
        """
        event_table = self._trod.provenance.event_table_of(table)
        rows = self._trod.query(
            "SELECT Timestamp, ReqId, HandlerName\n"
            f"FROM Executions as E, {event_table} as P\n"
            "ON E.TxnId = P.TxnId\n"
            f"WHERE P.{owner_column} != P.{updater_column} "
            "AND P.Type = 'Update'"
        ).as_dicts()
        return [
            PatternViolation(
                pattern="user-profiles",
                req_id=row["ReqId"],
                handler=row["HandlerName"],
                timestamp=row["Timestamp"],
                details={"table": table},
            )
            for row in rows
        ]

    def authentication(
        self, table: str, kinds: tuple[str, ...] = ("Read",)
    ) -> list[PatternViolation]:
        """Accesses to a protected table by unauthenticated requests."""
        event_table = self._trod.provenance.event_table_of(table)
        kind_list = ", ".join(f"'{k}'" for k in kinds)
        rows = self._trod.query(
            "SELECT E.Timestamp AS Timestamp, E.ReqId AS ReqId,"
            " E.HandlerName AS HandlerName, P.Type AS Kind\n"
            f"FROM Executions as E, {event_table} as P\n"
            "ON E.TxnId = P.TxnId\n"
            f"WHERE E.AuthUser IS NULL AND P.Type IN ({kind_list})"
        ).as_dicts()
        seen: set[tuple] = set()
        out: list[PatternViolation] = []
        for row in rows:
            key = (row["ReqId"], row["HandlerName"], row["Kind"])
            if key in seen:
                continue
            seen.add(key)
            out.append(
                PatternViolation(
                    pattern="authentication",
                    req_id=row["ReqId"],
                    handler=row["HandlerName"],
                    timestamp=row["Timestamp"],
                    details={"table": table, "kind": row["Kind"]},
                )
            )
        return out

    # -- custom patterns --------------------------------------------------------

    def register_pattern(self, name: str, sql: str, params: tuple = ()) -> None:
        """Register a custom access-control query.

        The query should return (Timestamp, ReqId, HandlerName, ...) rows;
        each result row becomes a violation.
        """
        self._patterns[name] = (sql, params)

    def run_pattern(self, name: str) -> list[PatternViolation]:
        sql, params = self._patterns[name]
        rows = self._trod.query(sql, params).as_dicts()
        return [
            PatternViolation(
                pattern=name,
                req_id=row.get("ReqId"),
                handler=row.get("HandlerName"),
                timestamp=row.get("Timestamp"),
                details={
                    k: v
                    for k, v in row.items()
                    if k not in ("ReqId", "HandlerName", "Timestamp")
                },
            )
            for row in rows
        ]

    def run_all(self) -> dict[str, list[PatternViolation]]:
        return {name: self.run_pattern(name) for name in sorted(self._patterns)}

    def raw(self, sql: str, params: tuple = ()) -> ResultSet:
        return self._trod.query(sql, params)
