"""Trace event records produced by the interposition layer.

These are the in-memory shapes that flow through the trace buffer before
being flattened into provenance tables. One committed transaction yields
one :class:`TxnEvent` plus one :class:`DataEvent` per row read or written
— the rows of the paper's Tables 1 and 2 respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class TxnEvent:
    """One transaction execution (a row of Table 1 / ``Executions``)."""

    txn_num: int  # numeric id, e.g. 7
    txn_name: str  # display id, e.g. "TXN7"
    ts: int  # logical timestamp assigned at begin
    req_id: str | None
    handler: str | None
    label: str  # the paper's "func:..." metadata
    isolation: str
    status: str  # 'Committed' | 'Aborted'
    csn: int | None  # commit sequence number (None if aborted)
    snapshot_csn: int
    auth_user: str | None = None


@dataclass(frozen=True)
class DataEvent:
    """One data operation (a row of Table 2 / ``<Table>Events``).

    ``values`` maps app-table column name to value; it is None for reads
    that matched nothing (logged with null data columns, as in Table 2)
    and for deletes.
    """

    txn_num: int
    txn_name: str
    table: str  # canonical app-table name
    kind: str  # 'Read' | 'Insert' | 'Update' | 'Delete' | 'Snapshot'
    query: str
    row_id: int | None
    values: dict[str, Any] | None
    csn: int | None  # commit CSN for writes; None for reads


@dataclass(frozen=True)
class RequestEvent:
    """One request execution (a row of ``Requests``)."""

    req_id: str
    handler: str
    args: tuple
    kwargs: dict[str, Any]
    auth_user: str | None
    start_ts: int
    end_ts: int
    status: str  # 'OK' | 'Error'
    output_repr: str | None
    error: str | None


@dataclass(frozen=True)
class WorkflowEdgeEvent:
    """One RPC edge in a request's workflow (a row of ``WorkflowEdges``)."""

    req_id: str
    caller: str
    callee: str
    seq: int
    ts: int


@dataclass(frozen=True)
class SideEffectEvent:
    """One recorded external side effect (a row of ``SideEffects``)."""

    req_id: str
    handler: str
    channel: str
    payload_repr: str
    ts: int


TraceEvent = (
    TxnEvent | DataEvent | RequestEvent | WorkflowEdgeEvent | SideEffectEvent
)
