"""Bug replay (§3.5).

Faithful replay re-executes a past request's handler code in a development
database while TROD reconstructs, at every transaction boundary, the state
the original transaction saw:

1. the development database is restored — from provenance alone — to the
   snapshot before the request's first transaction;
2. before re-executing the request's k-th transaction, the write events of
   *other* transactions that committed in between are injected, so the
   replayed transaction reads exactly what the original read;
3. a breakpoint callback fires at each boundary with the injected changes
   (this is where the paper attaches GDB; programmatically it is where a
   test inspects "the database was modified by R2 between R1's
   transactions");
4. after execution, output and per-transaction write sets are compared
   with the original trace — the fidelity check that turns Heisenbugs into
   Bohrbugs.

Because the injection bound is the *recorded snapshot CSN* of each original
transaction, the same code path also implements reenactment under snapshot
isolation (the §3.1 note; ablation A5): an SI transaction is replayed
against its recorded snapshot rather than the serial prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.db.database import Database
from repro.db.txn.manager import IsolationLevel, Transaction
from repro.errors import ProvenanceError, ReplayDivergenceError, ReplayError
from repro.runtime.context import RequestContext
from repro.runtime.workflow import Request, Runtime

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tracer import Trod


@dataclass
class InjectedWrite:
    """One concurrent write applied to the dev database before a step."""

    table: str
    kind: str  # 'Insert' | 'Update' | 'Delete'
    row_id: int
    values: dict[str, Any] | None
    csn: int
    txn_id: str
    req_id: str | None


@dataclass
class BreakpointInfo:
    """Handed to the breakpoint callback before each replayed transaction."""

    step_index: int  # 0-based
    txn_name: str  # original transaction id ("TXN4")
    label: str  # original func label ("DB.insert")
    injected: list[InjectedWrite]
    dev_db: Database

    def concurrent_writers(self) -> list[str]:
        """Requests whose writes were injected before this step."""
        seen: list[str] = []
        for write in self.injected:
            if write.req_id and write.req_id not in seen:
                seen.append(write.req_id)
        return seen


@dataclass
class ReplayStep:
    index: int
    original_txn: str
    label: str
    injected: list[InjectedWrite] = field(default_factory=list)
    replayed_txn: str | None = None


@dataclass
class ReplayResult:
    req_id: str
    handler: str
    output: Any
    error: str | None
    original_output: str | None
    original_error: str | None
    steps: list[ReplayStep]
    divergences: list[str]
    dev_db: Database

    @property
    def fidelity(self) -> bool:
        """True when the replay reproduced the original behaviour exactly."""
        return not self.divergences


class _ReplayRuntime(Runtime):
    """Runtime that injects dependency state before each transaction."""

    def __init__(self, engine_state: "_ReplayState", *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._state = engine_state

    def begin_transaction(
        self,
        ctx: RequestContext,
        label: str | None,
        isolation: IsolationLevel | None,
    ) -> Transaction:
        index = self._state.before_transaction(label)
        txn = super().begin_transaction(ctx, label, isolation)
        self._state.register_txn(txn, index)
        return txn


class _ReplayState:
    """Per-replay bookkeeping: the injection plan and breakpoints."""

    def __init__(
        self,
        engine: "ReplayEngine",
        req_id: str,
        txns: list[dict],
        dev_db: Database,
        dependency_filter: bool,
        breakpoint_cb: Callable[[BreakpointInfo], None] | None,
    ):
        self.engine = engine
        self.req_id = req_id
        self.txns = txns
        self.dev_db = dev_db
        self.dependency_filter = dependency_filter
        self.breakpoint_cb = breakpoint_cb
        self.steps: list[ReplayStep] = []
        self.applied_csn = txns[0]["SnapshotCsn"] if txns else 0
        self.step_index = 0
        #: dev-database txn_id -> replay step index (for write grouping).
        self.txn_step_map: dict[int, int] = {}

    def register_txn(self, txn: Transaction, index: int) -> None:
        self.txn_step_map[txn.txn_id] = index
        if index < len(self.steps):
            self.steps[index].replayed_txn = txn.name

    def before_transaction(self, label: str | None) -> int:
        index = self.step_index
        self.step_index += 1
        if index >= len(self.txns):
            # The replayed code executes more transactions than the
            # original — a divergence; nothing left to inject.
            step = ReplayStep(index=index, original_txn="(none)", label=label or "")
            self.steps.append(step)
            return index
        original = self.txns[index]
        bound = self._injection_bound(original)
        injected = self._inject_up_to(bound, original)
        step = ReplayStep(
            index=index,
            original_txn=original["TxnId"],
            label=(original["Metadata"] or "").removeprefix("func:"),
            injected=injected,
        )
        self.steps.append(step)
        if self.breakpoint_cb is not None:
            self.breakpoint_cb(
                BreakpointInfo(
                    step_index=index,
                    txn_name=original["TxnId"],
                    label=step.label,
                    injected=injected,
                    dev_db=self.dev_db,
                )
            )
        return index

    def _injection_bound(self, original: dict) -> int:
        """The CSN whose state the original transaction observed.

        SERIALIZABLE (2PL) transactions read the latest committed state,
        which at transaction granularity is csn - 1; SNAPSHOT transactions
        read their recorded begin snapshot — replaying against it is
        GProM-style reenactment.
        """
        if original["Isolation"] == IsolationLevel.SNAPSHOT.value:
            return original["SnapshotCsn"]
        return max(original["SnapshotCsn"], original["Csn"] - 1)

    def _inject_up_to(self, bound: int, original: dict) -> list[InjectedWrite]:
        if bound <= self.applied_csn:
            return []
        tables = None
        if self.dependency_filter:
            tables = self.engine.trod.provenance.tables_used_by_txn(
                original["TxnId"]
            )
            if not tables:
                self.applied_csn = bound
                return []
        events = self.engine.trod.provenance.writes_between(
            self.applied_csn, bound, tables=tables, exclude_req=self.req_id
        )
        self.applied_csn = bound
        self.engine.apply_writes(self.dev_db, events)
        return list(self.engine.last_applied)


class ReplayEngine:
    """Replays traced requests against reconstructed past states."""

    def __init__(self, trod: "Trod"):
        self.trod = trod
        self.last_applied: list[InjectedWrite] = []

    # ------------------------------------------------------------------

    def build_dev_db(
        self,
        upto_csn: int,
        tables: list[str] | None = None,
        name: str = "dev",
    ) -> Database:
        """A development database restored from provenance at ``upto_csn``."""
        dev = Database(name=name)
        self.trod.flush()
        self.trod.provenance.restore_into(dev, upto_csn, tables=tables)
        return dev

    def apply_writes(self, dev_db: Database, events: list[dict]) -> int:
        """Apply write events (from provenance) to the dev database.

        Runs as a single transaction labeled ``_trod.injector`` so that
        injected changes are distinguishable from replayed execution.
        """
        applied: list[InjectedWrite] = []
        if not events:
            self.last_applied = []
            return 0
        txn = dev_db.begin(info={"handler": "_trod.injector", "label": "inject"})
        try:
            for event in events:
                table = event["_table"]
                schema = self.trod.provenance.app_schema(table)
                column_map = self.trod.provenance._column_maps[table.lower()]
                kind = event["Type"]
                row_id = event["RowId"]
                values_dict = None
                if kind in ("Insert", "Update"):
                    values_dict = {
                        col: event[column_map[col]] for col in schema.column_names
                    }
                    values = schema.coerce_row(values_dict)
                if kind == "Insert":
                    txn.insert_with_id(table, values, row_id)
                elif kind == "Update":
                    txn.update(table, row_id, values)
                elif kind == "Delete":
                    txn.delete(table, row_id)
                applied.append(
                    InjectedWrite(
                        table=table,
                        kind=kind,
                        row_id=row_id,
                        values=values_dict,
                        csn=event["Csn"],
                        txn_id=event["TxnId"],
                        req_id=event.get("ReqId"),
                    )
                )
            txn.commit()
        except Exception:
            txn.abort()
            raise
        self.last_applied = applied
        return len(applied)

    # ------------------------------------------------------------------

    def replay_request(
        self,
        req_id: str,
        breakpoint_cb: Callable[[BreakpointInfo], None] | None = None,
        dependency_filter: bool = True,
        dev_db: Database | None = None,
        strict: bool = False,
    ) -> ReplayResult:
        """Faithfully replay one traced request (§3.5)."""
        self.trod.flush()
        provenance = self.trod.provenance
        try:
            request_row = provenance.request_row(req_id)
        except ProvenanceError as exc:
            raise ReplayError(str(exc)) from None
        txns = provenance.txns_of_request(req_id)
        if not txns:
            raise ReplayError(
                f"request {req_id!r} has no committed transactions to replay"
            )
        base_csn = txns[0]["SnapshotCsn"]
        tables = None
        if dependency_filter:
            used: set[str] = set()
            for txn in txns:
                used |= provenance.tables_used_by_txn(txn["TxnId"])
            tables = sorted(used)
        if dev_db is None:
            dev_db = Database(name=f"dev-{req_id}")
        provenance.restore_into(dev_db, base_csn, tables=tables)

        state = _ReplayState(
            engine=self,
            req_id=req_id,
            txns=txns,
            dev_db=dev_db,
            dependency_filter=dependency_filter,
            breakpoint_cb=breakpoint_cb,
        )
        source_runtime = self.trod.runtime
        dev_runtime = _ReplayRuntime(
            state,
            dev_db,
            registry=source_runtime.registry if source_runtime else None,
            seed=source_runtime.seed if source_runtime else 0,
        )
        handler, args, kwargs, auth_user = provenance.request_args(req_id)
        cdc_start = len(dev_db.cdc)
        result = dev_runtime.execute_request(
            Request(
                handler=handler,
                args=args,
                kwargs=kwargs,
                req_id=req_id,
                auth_user=auth_user,
            )
        )
        divergences = self._check_fidelity(
            request_row, txns, result, dev_db, cdc_start, state
        )
        replay_result = ReplayResult(
            req_id=req_id,
            handler=handler,
            output=result.output,
            error=result.error,
            original_output=request_row["Output"],
            original_error=request_row["Error"],
            steps=state.steps,
            divergences=divergences,
            dev_db=dev_db,
        )
        if strict and divergences:
            raise ReplayDivergenceError(
                f"replay of {req_id} diverged: {divergences}"
            )
        return replay_result

    def verify_determinism(self, req_id: str, runs: int = 3) -> bool:
        """Check principle P3: replaying a request repeatedly must agree.

        Replays ``req_id`` several times on fresh dev databases and
        compares outputs, errors, and final table states. Raises
        :class:`NonDeterminismError` naming the divergence if any run
        disagrees; returns True otherwise. A handler using wall time,
        unseeded randomness, or out-of-band state fails this check.
        """
        from repro.errors import NonDeterminismError

        baseline: tuple | None = None
        for run in range(runs):
            result = self.replay_request(req_id)
            state = {
                table: sorted(
                    tuple(r.values()) for r in result.dev_db.table_rows(table)
                )
                for table in result.dev_db.catalog.table_names()
            }
            observed = (repr(result.output), result.error, state)
            if baseline is None:
                baseline = observed
            elif observed != baseline:
                raise NonDeterminismError(
                    f"request {req_id} diverged on replay #{run + 1}: "
                    f"{observed!r} != {baseline!r}"
                )
        return True

    def _check_fidelity(
        self,
        request_row: dict,
        txns: list[dict],
        result: Any,
        dev_db: Database,
        cdc_start: int,
        state: _ReplayState,
    ) -> list[str]:
        divergences: list[str] = []
        original_output = request_row["Output"]
        original_error = request_row["Error"]
        if result.error is not None:
            if original_error != result.error:
                divergences.append(
                    f"error mismatch: original {original_error!r}, "
                    f"replay {result.error!r}"
                )
        elif repr(result.output) != original_output:
            divergences.append(
                f"output mismatch: original {original_output}, "
                f"replay {repr(result.output)}"
            )
        if state.step_index != len(txns):
            divergences.append(
                f"transaction count mismatch: original {len(txns)}, "
                f"replay {state.step_index}"
            )
        # Per-step write-set comparison (row ids excluded: id allocation
        # may legitimately differ in the dev database).
        replay_writes = self._replay_writes_by_step(dev_db, cdc_start, state)
        for index, original in enumerate(txns):
            original_set = self._original_writes(original["TxnId"])
            replayed_set = replay_writes.get(index, [])
            if sorted(original_set) != sorted(replayed_set):
                divergences.append(
                    f"write set of step {index} ({original['TxnId']}) differs: "
                    f"original {sorted(original_set)}, replay {sorted(replayed_set)}"
                )
        return divergences

    def _original_writes(self, txn_name: str) -> list[tuple]:
        out: list[tuple] = []
        provenance = self.trod.provenance
        for table in provenance.traced_tables():
            schema = provenance.app_schema(table)
            for event in provenance.data_events_of_txn(txn_name, table):
                if event["Type"] not in ("Insert", "Update", "Delete"):
                    continue
                column_map = provenance._column_maps[table.lower()]
                values = (
                    tuple(event[column_map[c]] for c in schema.column_names)
                    if event["Type"] != "Delete"
                    else None
                )
                out.append((table.lower(), event["Type"], values))
        return out

    def _replay_writes_by_step(
        self, dev_db: Database, cdc_start: int, state: _ReplayState
    ) -> dict[int, list[tuple]]:
        """Group the dev database's CDC records by replay step.

        Injector transactions never enter ``txn_step_map`` (they are
        created directly on the dev database, not through the replay
        runtime) so their records are skipped automatically.
        """
        records = dev_db.cdc.history()[cdc_start:]
        out: dict[int, list[tuple]] = {}
        for record in records:
            step = state.txn_step_map.get(record.txn_id)
            if step is None:
                continue
            out.setdefault(step, []).append(
                (record.table, record.op.capitalize(), record.values)
            )
        return out
