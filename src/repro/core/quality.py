"""Data-quality debugging extension (§5).

"We may support data quality tests over TROD's provenance database to
discover erroneous edits, and find requests that caused data quality
degradation."

Checks are declarative (per-row predicates or table-level uniqueness);
the monitor walks the table's write history *in commit order*,
maintaining the reconstructed state, and reports the first commit — and
therefore the first transaction and request — at which each check began
to fail. That pinpoints "the request that degraded data quality" without
any instrumentation of the application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tracer import Trod

RowPredicate = Callable[[dict[str, Any]], bool]


@dataclass(frozen=True)
class QualityViolation:
    """The first point in history where a check failed."""

    check: str
    table: str
    csn: int
    txn_id: str | None
    req_id: str | None
    handler: str | None
    detail: str


@dataclass
class _Check:
    name: str
    table: str  # canonical
    kind: str  # 'row' | 'unique'
    predicate: RowPredicate | None = None
    columns: tuple[str, ...] = ()
    description: str = ""


class DataQualityMonitor:
    """Runs declarative quality checks over traced history."""

    def __init__(self, trod: "Trod"):
        self._trod = trod
        self._checks: dict[str, _Check] = {}

    # -- registration -----------------------------------------------------------

    def add_row_check(
        self,
        name: str,
        table: str,
        predicate: RowPredicate,
        description: str = "",
    ) -> None:
        """Register a per-row validity predicate (True = row is valid)."""
        self._checks[name] = _Check(
            name=name,
            table=table.lower(),
            kind="row",
            predicate=predicate,
            description=description,
        )

    def add_unique_check(self, name: str, table: str, columns: list[str]) -> None:
        """Register an application-level uniqueness requirement."""
        schema = self._trod.provenance.app_schema(table)
        resolved = tuple(schema.column(c).name for c in columns)
        self._checks[name] = _Check(
            name=name, table=table.lower(), kind="unique", columns=resolved
        )

    def check_names(self) -> list[str]:
        return sorted(self._checks)

    # -- scanning ------------------------------------------------------------------

    def scan(self, upto_csn: int | None = None) -> list[QualityViolation]:
        """First violation of each registered check, in history order."""
        self._trod.flush()
        violations = []
        for name in sorted(self._checks):
            violation = self.first_degradation(name, upto_csn=upto_csn)
            if violation is not None:
                violations.append(violation)
        return violations

    def first_degradation(
        self, check_name: str, upto_csn: int | None = None
    ) -> QualityViolation | None:
        """Walk the write history until ``check_name`` first fails."""
        self._trod.flush()
        check = self._checks[check_name]
        provenance = self._trod.provenance
        schema = provenance.app_schema(check.table)
        column_map = provenance._column_maps[check.table]
        event_table = provenance.event_table_of(check.table)
        rows = provenance.query(
            f"SELECT * FROM {event_table}"
            " WHERE Type IN ('Snapshot', 'Insert', 'Update', 'Delete')"
            " ORDER BY Csn ASC, Seq ASC"
        ).as_dicts()
        state: dict[int, dict[str, Any]] = {}
        key_counts: dict[tuple, int] = {}

        def row_values(event: dict) -> dict[str, Any]:
            return {c: event[column_map[c]] for c in schema.column_names}

        def key_of(values: dict[str, Any]) -> tuple:
            return tuple(values[c] for c in check.columns)

        for event in rows:
            csn = event["Csn"] or 0
            if upto_csn is not None and csn > upto_csn:
                break
            kind = event["Type"]
            row_id = event["RowId"]
            changed: dict[str, Any] | None = None
            if kind == "Delete":
                removed = state.pop(row_id, None)
                if check.kind == "unique" and removed is not None:
                    key_counts[key_of(removed)] -= 1
                continue
            values = row_values(event)
            if check.kind == "unique":
                previous = state.get(row_id)
                if previous is not None:
                    key_counts[key_of(previous)] -= 1
                key = key_of(values)
                key_counts[key] = key_counts.get(key, 0) + 1
                if key_counts[key] > 1 and kind != "Snapshot":
                    return self._violation(
                        check, event, f"key {key!r} now appears "
                        f"{key_counts[key]} times"
                    )
            state[row_id] = values
            if check.kind == "row" and kind != "Snapshot":
                if not check.predicate(values):
                    return self._violation(
                        check, event, f"row {values!r} failed predicate"
                    )
        return None

    def _violation(
        self, check: _Check, event: dict, detail: str
    ) -> QualityViolation:
        txn_id = event["TxnId"]
        execution = self._trod.provenance.query(
            "SELECT ReqId, HandlerName FROM Executions WHERE TxnId = ?",
            (txn_id,),
        ).as_dicts()
        req_id = execution[0]["ReqId"] if execution else None
        handler = execution[0]["HandlerName"] if execution else None
        return QualityViolation(
            check=check.name,
            table=check.table,
            csn=event["Csn"] or 0,
            txn_id=txn_id,
            req_id=req_id,
            handler=handler,
            detail=detail,
        )

    def validate_current_state(self) -> dict[str, list[str]]:
        """Run all checks against the latest reconstructed state only."""
        self._trod.flush()
        out: dict[str, list[str]] = {}
        for name in sorted(self._checks):
            check = self._checks[name]
            schema = self._trod.provenance.app_schema(check.table)
            rows = [
                schema.row_dict(values)
                for _rid, values in self._trod.provenance.reconstruct_rows(
                    check.table, upto_csn=1 << 60
                )
            ]
            problems: list[str] = []
            if check.kind == "row":
                problems = [
                    f"invalid row {row!r}"
                    for row in rows
                    if not check.predicate(row)
                ]
            else:
                seen: dict[tuple, int] = {}
                for row in rows:
                    key = tuple(row[c] for c in check.columns)
                    seen[key] = seen.get(key, 0) + 1
                problems = [
                    f"key {key!r} appears {count} times"
                    for key, count in sorted(seen.items(), key=str)
                    if count > 1
                ]
            out[name] = problems
        return out
