"""Privacy extension (§5 "Guaranteeing Security and Privacy").

"TROD needs to let users completely remove any provenance data entry that
potentially contains their personal information and support debugging
from partial data. Therefore, we plan to research ways to maintain
non-sensitive but critical metadata."

Implemented as targeted redaction: :meth:`PrivacyManager.forget_value`
nulls every data column of matching event rows (and scrubs request
arguments) while preserving the non-sensitive metadata — transaction ids,
timestamps, operation kinds, row ids — so execution-structure debugging
keeps working. Redacted write events are excluded from replay injection;
replays that depended on the erased data degrade to reported divergences
rather than crashes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tracer import Trod

#: Marker written into the Query column of redacted events. The replay
#: injector skips events carrying it.
REDACTED = "[redacted]"


@dataclass(frozen=True)
class RedactionReport:
    """What one forget-request removed (no sensitive values retained)."""

    table: str
    column: str
    events_redacted: int
    requests_scrubbed: int


class PrivacyManager:
    """GDPR/CCPA-style erasure over the provenance database."""

    def __init__(self, trod: "Trod"):
        self._trod = trod
        self._ensure_audit_table()
        self.reports: list[RedactionReport] = []

    def _ensure_audit_table(self) -> None:
        db = self._trod.provenance.db
        if not db.catalog.has_table("Redactions"):
            db.execute(
                "CREATE TABLE Redactions ("
                " TableName TEXT NOT NULL, ColumnName TEXT NOT NULL,"
                " EventsRedacted INTEGER NOT NULL,"
                " RequestsScrubbed INTEGER NOT NULL,"
                " Timestamp INTEGER NOT NULL)"
            )

    def forget_value(self, table: str, column: str, value: str) -> RedactionReport:
        """Erase every provenance trace of ``value`` in ``table.column``.

        Data columns of matching event rows become NULL and their Query
        text becomes the redaction marker; metadata columns survive.
        Request rows whose recorded arguments contain the value have
        those arguments scrubbed too (they would otherwise leak through
        retroactive re-execution).
        """
        self._trod.flush()
        provenance = self._trod.provenance
        schema = provenance.app_schema(table)
        column_map = provenance._column_maps[table.lower()]
        event_table = provenance.event_table_of(table)
        target = column_map[schema.column(column).name]

        data_columns = ", ".join(
            f"{column_map[c]} = NULL" for c in schema.column_names
        )
        result = provenance.db.execute(
            f"UPDATE {event_table} SET {data_columns}, Query = ?"
            f" WHERE {target} = ?",
            (REDACTED, value),
        )
        events_redacted = result.rowcount
        # Checkpoints materialized before the redaction still hold the
        # erased values; drop them so reconstruction cannot resurrect data.
        provenance.invalidate_checkpoints(table)

        requests_scrubbed = self._scrub_request_args(value)
        report = RedactionReport(
            table=schema.name,
            column=schema.column(column).name,
            events_redacted=events_redacted,
            requests_scrubbed=requests_scrubbed,
        )
        self.reports.append(report)
        provenance.db.execute(
            "INSERT INTO Redactions (TableName, ColumnName, EventsRedacted,"
            " RequestsScrubbed, Timestamp) VALUES (?, ?, ?, ?, ?)",
            (
                report.table,
                report.column,
                report.events_redacted,
                report.requests_scrubbed,
                self._trod.clock.now(),
            ),
        )
        return report

    def _scrub_request_args(self, value: str) -> int:
        provenance = self._trod.provenance
        rows = provenance.query(
            "SELECT ReqId, ArgsJson, KwargsJson FROM Requests"
        ).as_dicts()
        scrubbed = 0
        for row in rows:
            args = json.loads(row["ArgsJson"] or "[]")
            kwargs = json.loads(row["KwargsJson"] or "{}")
            hit = False
            new_args = []
            for arg in args:
                if arg == value:
                    new_args.append(REDACTED)
                    hit = True
                else:
                    new_args.append(arg)
            new_kwargs = {}
            for key, arg in kwargs.items():
                if arg == value:
                    new_kwargs[key] = REDACTED
                    hit = True
                else:
                    new_kwargs[key] = arg
            if hit:
                provenance.db.execute(
                    "UPDATE Requests SET ArgsJson = ?, KwargsJson = ?"
                    " WHERE ReqId = ?",
                    (json.dumps(new_args), json.dumps(new_kwargs), row["ReqId"]),
                )
                scrubbed += 1
        return scrubbed

    # -- partial-data introspection --------------------------------------------

    def redacted_event_count(self, table: str) -> int:
        event_table = self._trod.provenance.event_table_of(table)
        return self._trod.provenance.query(
            f"SELECT COUNT(*) FROM {event_table} WHERE Query = ?",
            (REDACTED,),
        ).scalar()

    def audit_log(self) -> list[dict]:
        return self._trod.provenance.query(
            "SELECT * FROM Redactions ORDER BY Timestamp"
        ).as_dicts()
