"""Rendering provenance as the paper presents it.

``render_table1`` and ``render_table2`` regenerate the paper's Table 1
(transaction execution log) and Table 2 (data operations log);
``history_diagram`` draws Figure 3-style transaction histories with one
lane per request in commit order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.db.types import render_value

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tracer import Trod


def _text_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    lines.extend(
        " | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows
    )
    return "\n".join(lines)


def render_table1(trod: "Trod", req_ids: list[str] | None = None) -> str:
    """The Invocations/Executions log in the paper's Table 1 format."""
    trod.flush()
    rows = trod.provenance.query(
        "SELECT TxnId, Timestamp, HandlerName, ReqId, Metadata"
        " FROM Executions WHERE Status = 'Committed'"
        " ORDER BY Csn ASC"
    ).as_dicts()
    if req_ids is not None:
        wanted = set(req_ids)
        rows = [r for r in rows if r["ReqId"] in wanted]
    cells = [
        [
            r["TxnId"],
            f"TS{r['Timestamp']}",
            r["HandlerName"] or "-",
            r["ReqId"] or "-",
            r["Metadata"] or "",
        ]
        for r in rows
    ]
    return _text_table(["TxnId", "Timestamp", "HandlerName", "ReqId", "Metadata"], cells)


def render_table2(trod: "Trod", table: str, include_snapshot: bool = False) -> str:
    """The data-operations log for one app table (the paper's Table 2)."""
    trod.flush()
    provenance = trod.provenance
    event_table = provenance.event_table_of(table)
    schema = provenance.app_schema(table)
    rows = provenance.query(
        f"SELECT * FROM {event_table} ORDER BY Seq ASC"
    ).as_dicts()
    if not include_snapshot:
        rows = [r for r in rows if r["Type"] != "Snapshot"]
    column_map = provenance._column_maps[table.lower()]
    headers = ["TxnId", "Type", "Query"] + list(schema.column_names)
    cells = [
        [
            r["TxnId"],
            r["Type"],
            r["Query"] or "",
            *(render_value(r[column_map[c]]) for c in schema.column_names),
        ]
        for r in rows
    ]
    return _text_table(headers, cells)


def render_retroactive(result) -> str:
    """Figure 3 (bottom)-style summary of a retroactive run.

    One block per tested ordering: the schedule, each re-executed
    request's outcome vs the original, followup outcomes, and the final
    state of every traced table.
    """
    lines = [result.summary(), ""]
    for outcome in result.outcomes:
        lines.append(f"ordering {outcome.schedule}:")
        for request in outcome.requests:
            original = request.original_error or request.original_output
            now = request.error or request.output_repr
            marker = "*" if request.changed else " "
            lines.append(
                f"  {marker} {request.req_id}' {request.handler}: "
                f"{now} (was: {original})"
            )
        for followup in outcome.followups:
            original = followup.original_error or followup.original_output
            now = followup.error or followup.output_repr
            marker = "*" if followup.changed else " "
            lines.append(
                f"  {marker} then {followup.req_id}' {followup.handler}: "
                f"{now} (was: {original})"
            )
        for table, rows in sorted(outcome.final_state.items()):
            lines.append(f"    {table}: {rows}")
        if outcome.invariant_violations:
            lines.append(
                f"    invariant violations: {outcome.invariant_violations}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def history_diagram(trod: "Trod", req_ids: list[str] | None = None) -> str:
    """Figure 3-style history: lanes per request, columns in commit order."""
    trod.flush()
    rows = trod.provenance.query(
        "SELECT TxnId, ReqId, HandlerName, Metadata, Csn FROM Executions"
        " WHERE Status = 'Committed' AND ReqId IS NOT NULL ORDER BY Csn ASC"
    ).as_dicts()
    if req_ids is not None:
        wanted = set(req_ids)
        rows = [r for r in rows if r["ReqId"] in wanted]
    if not rows:
        return "(no committed transactions)"
    lanes = []
    for row in rows:
        if row["ReqId"] not in lanes:
            lanes.append(row["ReqId"])
    labels = []
    for row in rows:
        metadata = row["Metadata"] or ""
        label = metadata.removeprefix("func:") or row["HandlerName"] or row["TxnId"]
        labels.append(f"[{label}]")
    width = max(len(l) for l in labels) + 1
    lane_width = max(len(l) for l in lanes)
    lines = []
    for lane in lanes:
        cells = [
            labels[i].ljust(width) if row["ReqId"] == lane else " " * width
            for i, row in enumerate(rows)
        ]
        lines.append(f"{lane.rjust(lane_width)} |{''.join(cells)}")
    ruler = "".join(f"t{i + 1}".ljust(width) for i in range(len(rows)))
    lines.append(f"{' ' * lane_width} |{ruler}")
    return "\n".join(lines)
