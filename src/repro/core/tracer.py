"""The TROD facade: always-on tracing plus entry points to every feature.

Typical use::

    db = Database(); runtime = Runtime(db); build_app(db, runtime)
    trod = Trod(db, event_names={"forum_sub": "ForumEvents"})
    trod.attach(runtime)
    ... serve requests ...
    trod.debugger.sql("SELECT ... FROM Executions ...")
    trod.replayer.replay_request("R1")
    trod.retroactive.run(["R1", "R2"], patches={...})

Attaching registers the interposition layer on both the database (observer
API) and the runtime (hook API), switches on read tracking, snapshots
every application table into the provenance store (so past states can be
rebuilt from provenance alone), and records each table's DDL.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

from repro.core.buffer import TraceBuffer
from repro.core.interposition import InterpositionLayer
from repro.core.provenance import ProvenanceStore
from repro.db.database import Database
from repro.db.result import ResultSet
from repro.db.schema import TableSchema
from repro.errors import TrodError
from repro.runtime.clock import LogicalClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.debugger import Debugger
    from repro.core.replay import ReplayEngine
    from repro.core.retroactive import RetroactiveEngine
    from repro.core.security import AccessControlChecker
    from repro.core.taint import ExfiltrationTracker
    from repro.runtime.workflow import Runtime


class Trod:
    """Transaction-Oriented Debugger.

    ``database`` is any :class:`~repro.db.connection.Engine` — a single
    :class:`~repro.db.database.Database`, a
    :class:`~repro.db.sharding.ShardedDatabase` facade (every shard's
    transaction/statement events flow into one provenance stream), or a
    :class:`~repro.db.replication.ReplicatedDatabase` (the primary is
    observed; replicas replay the same commits by construction).
    """

    def __init__(
        self,
        database: "Database | Any",
        provenance: ProvenanceStore | None = None,
        buffer_capacity: int = 65536,
        event_names: dict[str, str] | None = None,
        checkpoint_interval: int | None = 256,
    ):
        self.database = database
        self.provenance = provenance or ProvenanceStore(
            checkpoint_interval=checkpoint_interval
        )
        self.buffer = TraceBuffer(capacity=buffer_capacity)
        self.interposition = InterpositionLayer(self)
        self.clock: LogicalClock = LogicalClock()
        self.runtime: "Runtime | None" = None
        self.attached = False
        self.base_csn = 0
        self.flush_ns = 0
        self._event_names = {k.lower(): v for k, v in (event_names or {}).items()}
        self._debugger: "Debugger | None" = None
        self._replayer: "ReplayEngine | None" = None
        self._retroactive: "RetroactiveEngine | None" = None
        self._security: "AccessControlChecker | None" = None
        self._taint: "ExfiltrationTracker | None" = None
        self._profiler = None
        self._quality = None
        self._privacy = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self, runtime: "Runtime | None" = None) -> "Trod":
        """Start tracing: register on the engine (and runtime, if any).

        ``runtime=None`` is the database-only attachment used by
        :func:`repro.connect`: the engine's observer stream (transactions,
        statements, commits) is captured without a handler runtime — the
        mode sharded and replicated engines are debugged in.
        """
        if self.attached:
            raise TrodError("this Trod instance is already attached")
        if runtime is not None:
            if runtime.database is not self.database:
                raise TrodError("runtime and Trod must share one database")
            self.runtime = runtime
            self.clock = runtime.clock
        self.base_csn = self.database.last_commit_csn
        shards = getattr(self.database, "shards", None)
        if shards is not None and len(shards) > 1:
            # On a multi-shard engine, last_commit_csn is a *global* CSN
            # while per-shard commit events carry local CSNs; a snapshot
            # of pre-attach data stamped with the global position would
            # make later commits look older than the snapshot (and merged
            # row ids collide across shards). Attach before loading.
            populated = [
                name
                for name in self.database.catalog.table_names()
                if self.database.snapshot_rows(name)
            ]
            if populated:
                raise TrodError(
                    "attach TROD to a multi-shard engine before loading "
                    f"data: table(s) {', '.join(sorted(populated))} already "
                    "hold rows, and their snapshot would mix the global CSN "
                    "space with per-shard commit CSNs"
                )
        for name in self.database.catalog.table_names():
            schema = self.database.catalog.get(name)
            self._register_table(schema)
        self.database.add_observer(self.interposition)
        self.database.track_reads = True
        if runtime is not None:
            runtime.add_hook(self.interposition)
        self.attached = True
        return self

    def detach(self) -> None:
        if not self.attached:
            return
        self.flush()
        self.database.remove_observer(self.interposition)
        self.database.track_reads = False
        if self.runtime is not None:
            self.runtime.remove_hook(self.interposition)
        self.attached = False

    def _register_table(self, schema: TableSchema) -> None:
        event_name = self._event_names.get(schema.name.lower())
        self.provenance.register_app_table(schema, event_table=event_name)
        rows = self.database.snapshot_rows(schema.name)
        if rows:
            self.provenance.capture_snapshot(schema.name, rows, self.base_csn)

    def on_table_created(self, schema: TableSchema) -> None:
        """Called by the interposition layer for tables created after attach."""
        self.provenance.register_app_table(
            schema, event_table=self._event_names.get(schema.name.lower())
        )

    # ------------------------------------------------------------------
    # Buffer management
    # ------------------------------------------------------------------

    def request_flush(self) -> None:
        """Called when the trace buffer fills (out-of-band in the paper)."""
        self.flush()

    def flush(self) -> int:
        """Drain buffered events into the provenance database."""
        events = self.buffer.drain()
        if not events:
            return 0
        start = time.perf_counter_ns()
        count = self.provenance.ingest(events)
        self.flush_ns += time.perf_counter_ns() - start
        return count

    # ------------------------------------------------------------------
    # Feature facades
    # ------------------------------------------------------------------

    def query(self, sql: str, params: tuple = ()) -> ResultSet:
        """Declarative debugging: SQL over the provenance database."""
        self.flush()
        return self.provenance.query(sql, params)

    @property
    def debugger(self) -> "Debugger":
        if self._debugger is None:
            from repro.core.debugger import Debugger

            self._debugger = Debugger(self)
        return self._debugger

    @property
    def replayer(self) -> "ReplayEngine":
        if self._replayer is None:
            from repro.core.replay import ReplayEngine

            self._replayer = ReplayEngine(self)
        return self._replayer

    @property
    def retroactive(self) -> "RetroactiveEngine":
        if self._retroactive is None:
            from repro.core.retroactive import RetroactiveEngine

            self._retroactive = RetroactiveEngine(self)
        return self._retroactive

    @property
    def security(self) -> "AccessControlChecker":
        if self._security is None:
            from repro.core.security import AccessControlChecker

            self._security = AccessControlChecker(self)
        return self._security

    @property
    def taint(self) -> "ExfiltrationTracker":
        if self._taint is None:
            from repro.core.taint import ExfiltrationTracker

            self._taint = ExfiltrationTracker(self)
        return self._taint

    # -- §5 extensions --------------------------------------------------------

    def enable_profiling(self):
        """Attach the §5 performance profiler; returns it."""
        from repro.core.profiling import PerformanceProfiler

        if self._profiler is None:
            self._profiler = PerformanceProfiler(self)
        return self._profiler.attach()

    @property
    def profiler(self):
        from repro.core.profiling import PerformanceProfiler

        if self._profiler is None:
            self._profiler = PerformanceProfiler(self)
        return self._profiler

    @property
    def quality(self):
        """The §5 data-quality monitor."""
        from repro.core.quality import DataQualityMonitor

        if self._quality is None:
            self._quality = DataQualityMonitor(self)
        return self._quality

    @property
    def privacy(self):
        """The §5 privacy/redaction manager."""
        from repro.core.privacy import PrivacyManager

        if self._privacy is None:
            self._privacy = PrivacyManager(self)
        return self._privacy

    # ------------------------------------------------------------------
    # Stats (benchmark E7's numbers come from here)
    # ------------------------------------------------------------------

    def overhead_stats(self) -> dict[str, Any]:
        layer = self.interposition
        return {
            "requests_traced": layer.requests_traced,
            "events_emitted": layer.events_emitted,
            "tracing_overhead_us_total": layer.overhead_ns / 1000.0,
            "tracing_overhead_us_per_request": layer.overhead_us_per_request,
            "flush_us_total": self.flush_ns / 1000.0,
            "buffer": self.buffer.stats(),
        }
