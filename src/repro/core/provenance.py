"""TROD's provenance database (§3.4).

Captured traces land in an *analytical* database — itself an instance of
our engine — with the schema of the paper:

* ``Executions`` (aliased as ``Invocations``, the name Table 1 uses):
  one row per transaction, with request metadata.
* ``<Table>Events``: one row per data operation on each traced app table
  (Table 2), carrying the app table's own columns so reads and writes are
  directly queryable. Base snapshots captured at attach time are stored as
  ``Type = 'Snapshot'`` rows, which makes a past database state
  reconstructible *from provenance alone* — the property bug replay needs.
* ``Requests``, ``WorkflowEdges``, ``SideEffects``: request lifecycles,
  RPC workflow edges, and recorded external effects.
"""

from __future__ import annotations

import bisect
import json
import os
from collections import OrderedDict
from typing import Any, Iterable

from repro.core.events import (
    DataEvent,
    RequestEvent,
    SideEffectEvent,
    TraceEvent,
    TxnEvent,
    WorkflowEdgeEvent,
)
from repro.db.database import Database
from repro.db.result import ResultSet
from repro.db.schema import Column, TableSchema
from repro.db.types import ColumnType
from repro.errors import ProvenanceError

#: Metadata columns prepended to every event table.
_EVENT_META = [
    ("TxnId", ColumnType.TEXT),
    ("TxnNum", ColumnType.INTEGER),
    ("Type", ColumnType.TEXT),
    ("Query", ColumnType.TEXT),
    ("Csn", ColumnType.INTEGER),
    ("Seq", ColumnType.INTEGER),
    ("RowId", ColumnType.INTEGER),
]

_WRITE_KINDS = ("Insert", "Update", "Delete")

#: Per-table checkpoint cap; exceeding it thins the older half so memory
#: stays O(cap * table size) while coverage still spans the history.
_MAX_TABLE_CHECKPOINTS = 16


class _LiveState:
    """Incrementally maintained live rows of one traced table.

    Folding committed write events into this map at ingest time makes
    :meth:`ProvenanceStore.create_checkpoint` O(table size) instead of
    O(history): the materialized state is already there, no event replay
    or SQL scan needed. ``dirty`` counts folds since the last checkpoint
    taken from this state, so unchanged tables are skipped without even
    a COUNT query. Any event the fold cannot apply faithfully (out of
    order, missing values) drops the state; the next checkpoint falls
    back to event replay and re-seeds it.
    """

    __slots__ = ("rows", "csn", "dirty")

    def __init__(self, rows: dict[int, tuple], csn: int, dirty: int = 0):
        self.rows = rows
        self.csn = csn
        self.dirty = dirty


class _SpilledRows:
    """Placeholder payload for a checkpoint written to disk."""

    __slots__ = ("path", "count")

    def __init__(self, path: str, count: int):
        self.path = path
        self.count = count


def default_event_table_name(table: str) -> str:
    """forum_sub -> ForumSubEvents."""
    camel = "".join(part.capitalize() for part in table.split("_"))
    return f"{camel}Events"


class ProvenanceStore:
    """Ingests trace events and answers declarative debugging queries."""

    def __init__(
        self,
        db: Database | None = None,
        checkpoint_interval: int | None = 256,
    ):
        self.db = db or Database(name="provenance")
        self._next_seq = 1
        #: app table (canonical) -> event table name
        self._event_tables: dict[str, str] = {}
        #: app table (canonical) -> app TableSchema
        self._app_schemas: dict[str, TableSchema] = {}
        #: app table -> {app column -> event-table column}
        self._column_maps: dict[str, dict[str, str]] = {}
        #: Create materialized checkpoints automatically every N ingested
        #: commits (None disables automatic checkpointing).
        self.checkpoint_interval = checkpoint_interval
        #: app table -> ascending [(csn, ((row_id, values), ...)), ...];
        #: each entry is the table's full live state as of that csn, so
        #: reconstruction replays only the events after the nearest one.
        self._checkpoints: dict[str, list[tuple[int, tuple]]] = {}
        self._commits_since_checkpoint = 0
        self._max_write_csn = 0
        #: app table -> incrementally folded live state (see _LiveState).
        self._live: dict[str, _LiveState] = {}
        #: Checkpoints whose row payload exceeds this many rows spill to
        #: disk (next to the provenance database's WAL) instead of being
        #: pinned in memory. Spilling is disabled when the provenance
        #: database has no on-disk WAL to anchor the spill directory.
        self.spill_threshold = 2048
        #: Spilled payloads loaded back for reconstruction, LRU by access.
        self.spill_cache_size = 4
        self._spill_cache: OrderedDict[tuple[str, int], tuple] = OrderedDict()
        self.checkpoint_stats = {
            "checkpoints": 0,
            "checkpoint_restores": 0,
            "full_restores": 0,
            "spills": 0,
            "spill_loads": 0,
            "spill_cache_hits": 0,
        }
        self._create_base_tables()

    # ------------------------------------------------------------------
    # Schema management
    # ------------------------------------------------------------------

    def _create_base_tables(self) -> None:
        self.db.execute(
            "CREATE TABLE Executions ("
            " TxnId TEXT NOT NULL, TxnNum INTEGER NOT NULL,"
            " Timestamp INTEGER, HandlerName TEXT, ReqId TEXT,"
            " Metadata TEXT, Isolation TEXT, Status TEXT,"
            " Csn INTEGER, SnapshotCsn INTEGER, AuthUser TEXT)"
        )
        # The paper's Table 1 calls this table "Invocations" while its SQL
        # queries say "Executions"; both names work here.
        self.db.add_table_alias("Invocations", "Executions")
        self.db.execute(
            "CREATE TABLE Requests ("
            " ReqId TEXT NOT NULL, HandlerName TEXT NOT NULL,"
            " ArgsJson TEXT, KwargsJson TEXT, AuthUser TEXT,"
            " StartTs INTEGER, EndTs INTEGER,"
            " Status TEXT, Output TEXT, Error TEXT)"
        )
        self.db.execute(
            "CREATE TABLE WorkflowEdges ("
            " ReqId TEXT NOT NULL, Caller TEXT, Callee TEXT,"
            " Seq INTEGER, Timestamp INTEGER)"
        )
        self.db.execute(
            "CREATE TABLE SideEffects ("
            " ReqId TEXT NOT NULL, HandlerName TEXT, Channel TEXT,"
            " Payload TEXT, Timestamp INTEGER)"
        )
        self.db.execute(
            "CREATE TABLE TraceSchemas ("
            " TableName TEXT NOT NULL, EventTable TEXT NOT NULL, Ddl TEXT)"
        )
        self.db.create_index("ix_exec_txn", "Executions", ["TxnId"])
        self.db.create_index("ix_exec_req", "Executions", ["ReqId"])
        self.db.create_index("ix_req_id", "Requests", ["ReqId"])
        self.db.create_index("ix_edges_req", "WorkflowEdges", ["ReqId"])

    def register_app_table(
        self, schema: TableSchema, event_table: str | None = None
    ) -> str:
        """Create the ``<Table>Events`` table for one traced app table."""
        canonical = schema.name.lower()
        if canonical in self._event_tables:
            return self._event_tables[canonical]
        name = event_table or default_event_table_name(schema.name)
        meta_names = {m.lower() for m, _t in _EVENT_META}
        column_map: dict[str, str] = {}
        columns = [
            Column(name=cname, col_type=ctype, nullable=(cname != "TxnId"))
            for cname, ctype in _EVENT_META
        ]
        for col in schema.columns:
            out_name = col.name
            if out_name.lower() in meta_names:
                out_name = f"{col.name}_"
            column_map[col.name] = out_name
            columns.append(Column(name=out_name, col_type=col.col_type, nullable=True))
        self.db.create_table(TableSchema(name, columns))
        self.db.create_index(f"ix_{name}_txn".lower(), name, ["TxnId"])
        # Range probes over Csn keep checkpointed reconstruction O(delta):
        # the delta query reads only events after the checkpoint.
        self.db.create_index(
            f"ix_{name}_csn".lower(), name, ["Csn"], sorted_index=True
        )
        self._event_tables[canonical] = name
        self._app_schemas[canonical] = schema
        self._column_maps[canonical] = column_map
        # The table starts empty, so its live state is trivially current.
        self._live[canonical] = _LiveState({}, 0)
        self.db.execute(
            "INSERT INTO TraceSchemas (TableName, EventTable, Ddl) VALUES (?, ?, ?)",
            (schema.name, name, schema.ddl()),
        )
        return name

    def event_table_of(self, table: str) -> str:
        try:
            return self._event_tables[table.lower()]
        except KeyError:
            raise ProvenanceError(
                f"table {table!r} is not traced (known: "
                f"{sorted(self._event_tables)})"
            ) from None

    def app_schema(self, table: str) -> TableSchema:
        try:
            return self._app_schemas[table.lower()]
        except KeyError:
            raise ProvenanceError(f"table {table!r} is not traced") from None

    def traced_tables(self) -> list[str]:
        return [self._app_schemas[k].name for k in sorted(self._app_schemas)]

    def create_app_tables_in(self, target: Database) -> None:
        """Recreate every traced app table's schema in ``target`` (dev DB)."""
        for key in sorted(self._app_schemas):
            schema = self._app_schemas[key]
            if not target.catalog.has_table(schema.name):
                target.create_table(schema)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def capture_snapshot(
        self, table: str, rows: Iterable[tuple[int, tuple]], csn: int
    ) -> int:
        """Record the full content of ``table`` as Type='Snapshot' events."""
        schema = self.app_schema(table)
        event_table = self.event_table_of(table)
        column_map = self._column_maps[table.lower()]
        # A new base snapshot redefines the table's reconstruction floor.
        self.invalidate_checkpoints(table)
        txn = self.db.begin()
        count = 0
        snapshot_rows: dict[int, tuple] = {}
        try:
            for row_id, values in rows:
                snapshot_rows[row_id] = tuple(values)
                record: dict[str, Any] = {
                    "TxnId": "SNAPSHOT",
                    "TxnNum": 0,
                    "Type": "Snapshot",
                    "Query": "base snapshot",
                    "Csn": csn,
                    "Seq": self._next_seq,
                    "RowId": row_id,
                }
                self._next_seq += 1
                for col, value in zip(schema.column_names, values):
                    record[column_map[col]] = value
                self.db.insert_row(event_table, record, txn=txn)
                count += 1
            txn.commit()
        except Exception:
            txn.abort()
            raise
        # The snapshot *is* the live state as of its csn.
        self._live[table.lower()] = _LiveState(snapshot_rows, csn)
        return count

    def ingest(self, events: list[TraceEvent]) -> int:
        """Store a batch of drained trace events in one transaction."""
        if not events:
            return 0
        txn = self.db.begin()
        try:
            for event in events:
                if isinstance(event, TxnEvent):
                    self._ingest_txn(event, txn)
                elif isinstance(event, DataEvent):
                    self._ingest_data(event, txn)
                elif isinstance(event, RequestEvent):
                    self._ingest_request(event, txn)
                elif isinstance(event, WorkflowEdgeEvent):
                    self._ingest_edge(event, txn)
                elif isinstance(event, SideEffectEvent):
                    self._ingest_side_effect(event, txn)
                else:  # pragma: no cover - event union is closed
                    raise ProvenanceError(f"unknown event type {type(event)}")
            txn.commit()
        except Exception:
            txn.abort()
            raise
        if (
            self.checkpoint_interval is not None
            and self._commits_since_checkpoint >= self.checkpoint_interval
        ):
            self.create_checkpoint()
        return len(events)

    def _ingest_txn(self, event: TxnEvent, txn) -> None:
        if event.status == "Committed" and event.csn is not None:
            self._commits_since_checkpoint += 1
            if event.csn > self._max_write_csn:
                self._max_write_csn = event.csn
        metadata = f"func:{event.label}" if event.label else ""
        self.db.insert_row(
            "Executions",
            {
                "TxnId": event.txn_name,
                "TxnNum": event.txn_num,
                "Timestamp": event.ts,
                "HandlerName": event.handler,
                "ReqId": event.req_id,
                "Metadata": metadata,
                "Isolation": event.isolation,
                "Status": event.status,
                "Csn": event.csn,
                "SnapshotCsn": event.snapshot_csn,
                "AuthUser": event.auth_user,
            },
            txn=txn,
        )

    def _ingest_data(self, event: DataEvent, txn) -> None:
        table = event.table.lower()
        if table not in self._event_tables:
            # Untraced table (e.g. created after attach without a hook):
            # skip rather than fail the whole batch.
            return
        if event.kind in _WRITE_KINDS:
            if event.csn is not None and event.csn > self._max_write_csn:
                self._max_write_csn = event.csn
            # An event landing at or before an existing checkpoint would
            # make that checkpoint stale — drop the affected ones.
            checkpoints = self._checkpoints.get(table)
            if (
                checkpoints
                and event.csn is not None
                and event.csn <= checkpoints[-1][0]
            ):
                kept = [e for e in checkpoints if e[0] < event.csn]
                self._discard_payloads(
                    table, checkpoints[len(kept):]
                )
                self._checkpoints[table] = kept
            self._fold_live(table, event)
        record: dict[str, Any] = {
            "TxnId": event.txn_name,
            "TxnNum": event.txn_num,
            "Type": event.kind,
            "Query": event.query,
            "Csn": event.csn,
            "Seq": self._next_seq,
            "RowId": event.row_id,
        }
        self._next_seq += 1
        if event.values is not None:
            column_map = self._column_maps[table]
            for col, value in event.values.items():
                record[column_map[col]] = value
        self.db.insert_row(self._event_tables[table], record, txn=txn)

    def _fold_live(self, table: str, event: DataEvent) -> None:
        """Apply one committed write event to the table's live state.

        The fold mirrors :meth:`_apply_event_rows` exactly; anything it
        cannot apply faithfully (no csn, csn below the state's watermark,
        missing row id or values) invalidates the state instead of
        guessing — correctness falls back to event replay.
        """
        live = self._live.get(table)
        if live is None:
            return
        if (
            event.csn is None
            or event.csn < live.csn
            or event.row_id is None
            or (event.kind != "Delete" and event.values is None)
        ):
            self._live.pop(table, None)
            return
        live.csn = event.csn
        live.dirty += 1
        if event.kind == "Delete":
            live.rows.pop(event.row_id, None)
        else:
            schema = self._app_schemas[table]
            live.rows[event.row_id] = tuple(
                event.values.get(col) for col in schema.column_names
            )

    def _ingest_request(self, event: RequestEvent, txn) -> None:
        self.db.insert_row(
            "Requests",
            {
                "ReqId": event.req_id,
                "HandlerName": event.handler,
                "ArgsJson": json.dumps(list(event.args), default=repr),
                "KwargsJson": json.dumps(event.kwargs, default=repr),
                "AuthUser": event.auth_user,
                "StartTs": event.start_ts,
                "EndTs": event.end_ts,
                "Status": event.status,
                "Output": event.output_repr,
                "Error": event.error,
            },
            txn=txn,
        )

    def _ingest_edge(self, event: WorkflowEdgeEvent, txn) -> None:
        self.db.insert_row(
            "WorkflowEdges",
            {
                "ReqId": event.req_id,
                "Caller": event.caller,
                "Callee": event.callee,
                "Seq": event.seq,
                "Timestamp": event.ts,
            },
            txn=txn,
        )

    def _ingest_side_effect(self, event: SideEffectEvent, txn) -> None:
        self.db.insert_row(
            "SideEffects",
            {
                "ReqId": event.req_id,
                "HandlerName": event.handler,
                "Channel": event.channel,
                "Payload": event.payload_repr,
                "Timestamp": event.ts,
            },
            txn=txn,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, sql: str, params: tuple = ()) -> ResultSet:
        return self.db.execute(sql, params)

    def txns_of_request(self, req_id: str, committed_only: bool = True) -> list[dict]:
        """This request's transactions in commit order."""
        sql = (
            "SELECT TxnId, TxnNum, Timestamp, HandlerName, Metadata, Csn,"
            " SnapshotCsn, Isolation, Status"
            " FROM Executions WHERE ReqId = ?"
        )
        if committed_only:
            sql += " AND Status = 'Committed'"
        sql += " ORDER BY Csn ASC, TxnNum ASC"
        return self.query(sql, (req_id,)).as_dicts()

    def request_row(self, req_id: str) -> dict:
        rows = self.query(
            "SELECT * FROM Requests WHERE ReqId = ?", (req_id,)
        ).as_dicts()
        if not rows:
            raise ProvenanceError(f"no traced request {req_id!r}")
        return rows[0]

    def request_args(self, req_id: str) -> tuple[str, tuple, dict, str | None]:
        """(handler, args, kwargs, auth_user) needed to re-execute a request."""
        row = self.request_row(req_id)
        args = tuple(json.loads(row["ArgsJson"] or "[]"))
        kwargs = dict(json.loads(row["KwargsJson"] or "{}"))
        return row["HandlerName"], args, kwargs, row["AuthUser"]

    def writes_between(
        self,
        low_csn: int,
        high_csn: int,
        tables: Iterable[str] | None = None,
        exclude_req: str | None = None,
    ) -> list[dict]:
        """Committed write events with ``low_csn < Csn <= high_csn``.

        This is the §3.5 injection set: the state changes a replayed
        transaction depends on. ``tables`` restricts to the data the
        transaction actually uses (ablation A1); ``exclude_req`` drops the
        replayed request's own writes (re-execution recreates them).
        """
        names = (
            [t.lower() for t in tables]
            if tables is not None
            else sorted(self._event_tables)
        )
        out: list[dict] = []
        for table in names:
            if table not in self._event_tables:
                continue
            event_table = self._event_tables[table]
            rows = self.query(
                f"SELECT E.ReqId AS ReqId, F.* FROM {event_table} AS F"
                " LEFT JOIN Executions AS E ON F.TxnId = E.TxnId"
                " WHERE F.Csn > ? AND F.Csn <= ?"
                " AND F.Type IN ('Insert', 'Update', 'Delete')",
                (low_csn, high_csn),
            ).as_dicts()
            for row in rows:
                if exclude_req is not None and row.get("ReqId") == exclude_req:
                    continue
                if row.get("Query") == "[redacted]":
                    # Erased under the privacy extension: replay proceeds
                    # from partial data (§5) rather than leaking values.
                    continue
                row["_table"] = self._app_schemas[table].name
                out.append(row)
        out.sort(key=lambda r: (r["Csn"], r["Seq"]))
        return out

    def tables_used_by_txn(self, txn_name: str) -> set[str]:
        """App tables a transaction read or wrote (canonical names)."""
        used: set[str] = set()
        for table, event_table in self._event_tables.items():
            count = self.query(
                f"SELECT COUNT(*) FROM {event_table} WHERE TxnId = ?",
                (txn_name,),
            ).scalar()
            if count:
                used.add(table)
        return used

    def data_events_of_txn(self, txn_name: str, table: str) -> list[dict]:
        event_table = self.event_table_of(table)
        return self.query(
            f"SELECT * FROM {event_table} WHERE TxnId = ? ORDER BY Seq",
            (txn_name,),
        ).as_dicts()

    # ------------------------------------------------------------------
    # State reconstruction (replay's substrate)
    # ------------------------------------------------------------------

    def reconstruct_rows(self, table: str, upto_csn: int) -> list[tuple[int, tuple]]:
        """Rows of ``table`` as of ``upto_csn``, from provenance alone.

        Restores from the nearest checkpoint at or before ``upto_csn`` and
        applies only the write events after it; without a usable
        checkpoint, applies the base snapshot and then every committed
        write event with ``Csn <= upto_csn`` in (Csn, Seq) order.
        """
        schema = self.app_schema(table)
        event_table = self.event_table_of(table)
        column_map = self._column_maps[table.lower()]
        checkpoint = self._nearest_checkpoint(table, upto_csn)
        if checkpoint is not None:
            base_csn = checkpoint[0]
            base_rows = self._checkpoint_rows(table.lower(), checkpoint)
            self.checkpoint_stats["checkpoint_restores"] += 1
            state: dict[int, tuple] = dict(base_rows)
            if upto_csn > base_csn:
                rows = self.query(
                    f"SELECT * FROM {event_table}"
                    " WHERE Csn > ? AND Csn <= ? AND"
                    " Type IN ('Insert', 'Update', 'Delete')"
                    " ORDER BY Csn ASC, Seq ASC",
                    (base_csn, upto_csn),
                ).as_dicts()
                self._apply_event_rows(state, rows, schema, column_map)
            return sorted(state.items())
        self.checkpoint_stats["full_restores"] += 1
        rows = self.query(
            f"SELECT * FROM {event_table}"
            " WHERE Type = 'Snapshot' OR (Csn <= ? AND"
            " Type IN ('Insert', 'Update', 'Delete'))"
            " ORDER BY Csn ASC, Seq ASC",
            (upto_csn,),
        ).as_dicts()
        snapshot_csns = [r["Csn"] for r in rows if r["Type"] == "Snapshot"]
        if snapshot_csns and min(snapshot_csns) > upto_csn:
            raise ProvenanceError(
                f"cannot reconstruct {table!r} at csn {upto_csn}: base "
                f"snapshot was taken at csn {min(snapshot_csns)}"
            )
        state = {}
        self._apply_event_rows(state, rows, schema, column_map)
        return sorted(state.items())

    @staticmethod
    def _apply_event_rows(
        state: dict[int, tuple],
        rows: list[dict],
        schema: TableSchema,
        column_map: dict[str, str],
    ) -> None:
        """Fold ordered event rows into a ``row_id -> values`` state."""
        for row in rows:
            kind = row["Type"]
            row_id = row["RowId"]
            if kind == "Delete":
                state.pop(row_id, None)
                continue
            if row.get("Query") == "[redacted]":
                # The row's values were erased; reconstruction proceeds
                # from partial data — the row is simply absent.
                state.pop(row_id, None)
                continue
            values = tuple(
                row[column_map[col]] for col in schema.column_names
            )
            state[row_id] = values

    # ------------------------------------------------------------------
    # Checkpoints (replay accelerator)
    # ------------------------------------------------------------------

    def create_checkpoint(self, csn: int | None = None) -> int:
        """Materialize every traced table's state as of ``csn``.

        ``csn`` defaults to the highest committed write CSN ingested so
        far. Returns the checkpoint CSN. Subsequent reconstructions at or
        after it replay only the delta, turning replay's dev-database
        restore from O(history) into O(delta).
        """
        if csn is None:
            csn = self._max_write_csn
        for table in sorted(self._app_schemas):
            entries = self._checkpoints.setdefault(table, [])
            if entries and entries[-1][0] >= csn:
                continue
            live = self._live.get(table)
            if live is not None and csn >= live.csn:
                # Fast path: the incrementally folded state *is* the
                # table at every csn from live.csn through ``csn`` (no
                # later events exist). O(table size), O(1) in history.
                if entries and live.dirty == 0:
                    # Nothing folded since the newest checkpoint: it
                    # already serves restores up to ``csn`` for free.
                    continue
                rows = sorted(live.rows.items())
                live.dirty = 0
            else:
                # Slow path: no live state (invalidated) or an explicit
                # historical ``csn`` below its watermark — replay events.
                if entries and not self._has_events_between(
                    table, entries[-1][0], csn
                ):
                    continue
                try:
                    rows = self.reconstruct_rows(table, csn)
                except ProvenanceError:
                    # e.g. the table's base snapshot postdates ``csn``.
                    continue
                if live is None and csn >= self._max_write_csn:
                    # The result is current — re-seed the live state so
                    # future checkpoints take the fast path again.
                    self._live[table] = _LiveState(dict(rows), csn)
            entries.append((csn, self._maybe_spill(table, csn, tuple(rows))))
            self.checkpoint_stats["checkpoints"] += 1
            if len(entries) > _MAX_TABLE_CHECKPOINTS:
                # Thin the older half (keep every other entry plus the
                # newest) so retention stays bounded but spread out.
                thinned = entries[0::2]
                if thinned[-1][0] != entries[-1][0]:
                    thinned.append(entries[-1])
                kept = {entry[0] for entry in thinned}
                self._discard_payloads(
                    table, [e for e in entries if e[0] not in kept]
                )
                self._checkpoints[table] = thinned
        self._commits_since_checkpoint = 0
        return csn

    # -- checkpoint spill-to-disk ---------------------------------------

    def _spill_dir(self) -> str | None:
        """Directory for spilled checkpoints, or None to keep in memory.

        Spills land beside the provenance database's WAL so they share
        its durability domain and lifecycle (ephemeral data dirs clean
        them up automatically).
        """
        wal = getattr(self.db, "wal", None)
        path = wal.path if wal is not None else None
        if not path:
            return None
        return os.path.join(os.path.dirname(path) or ".", "prov_spill")

    def _maybe_spill(self, table: str, csn: int, rows: tuple) -> Any:
        """Write a large payload to disk, returning its stub (or rows)."""
        if len(rows) < self.spill_threshold:
            return rows
        spill_dir = self._spill_dir()
        if spill_dir is None:
            return rows
        os.makedirs(spill_dir, exist_ok=True)
        path = os.path.join(spill_dir, f"{table}-{csn}.ckpt.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                [[row_id, list(values)] for row_id, values in rows], handle
            )
        self.checkpoint_stats["spills"] += 1
        # A fresh spill is the likeliest next restore base: warm the cache.
        self._cache_spilled(table, csn, rows)
        return _SpilledRows(path, len(rows))

    def _checkpoint_rows(self, table: str, entry: tuple[int, Any]) -> tuple:
        """Resolve a checkpoint entry's payload, loading spills via LRU."""
        csn, payload = entry
        if not isinstance(payload, _SpilledRows):
            return payload
        cached = self._spill_cache.get((table, csn))
        if cached is not None:
            self._spill_cache.move_to_end((table, csn))
            self.checkpoint_stats["spill_cache_hits"] += 1
            return cached
        with open(payload.path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        rows = tuple((row_id, tuple(values)) for row_id, values in data)
        self.checkpoint_stats["spill_loads"] += 1
        self._cache_spilled(table, csn, rows)
        return rows

    def _cache_spilled(self, table: str, csn: int, rows: tuple) -> None:
        self._spill_cache[(table, csn)] = rows
        self._spill_cache.move_to_end((table, csn))
        while len(self._spill_cache) > self.spill_cache_size:
            self._spill_cache.popitem(last=False)

    def _discard_payloads(
        self, table: str, entries: Iterable[tuple[int, Any]]
    ) -> None:
        """Release spilled files and cache slots of dropped checkpoints."""
        for csn, payload in entries:
            self._spill_cache.pop((table, csn), None)
            if isinstance(payload, _SpilledRows):
                try:
                    os.unlink(payload.path)
                except OSError:
                    pass

    def _has_events_between(self, table: str, low_csn: int, high_csn: int) -> bool:
        """Whether any committed write events land in (low_csn, high_csn]."""
        event_table = self._event_tables[table]
        count = self.query(
            f"SELECT COUNT(*) FROM {event_table}"
            " WHERE Csn > ? AND Csn <= ? AND"
            " Type IN ('Insert', 'Update', 'Delete')",
            (low_csn, high_csn),
        ).scalar()
        return bool(count)

    def _nearest_checkpoint(
        self, table: str, upto_csn: int
    ) -> tuple[int, tuple] | None:
        """The latest checkpoint of ``table`` with csn <= ``upto_csn``."""
        entries = self._checkpoints.get(table.lower())
        if not entries:
            return None
        index = bisect.bisect_right(entries, upto_csn, key=lambda e: e[0])
        if index == 0:
            return None
        return entries[index - 1]

    def invalidate_checkpoints(self, table: str | None = None) -> None:
        """Drop checkpoints (all tables, or one) after out-of-band edits.

        The privacy extension rewrites event rows in place; checkpoints
        created beforehand would resurrect the erased values.
        """
        if table is None:
            for name, entries in self._checkpoints.items():
                self._discard_payloads(name, entries)
            self._checkpoints.clear()
            self._live.clear()
        else:
            key = table.lower()
            self._discard_payloads(key, self._checkpoints.pop(key, ()))
            self._live.pop(key, None)

    def checkpoint_csns(self, table: str) -> list[int]:
        return [csn for csn, _rows in self._checkpoints.get(table.lower(), [])]

    def restore_into(
        self, target: Database, upto_csn: int, tables: Iterable[str] | None = None
    ) -> dict[str, int]:
        """Materialize traced tables at ``upto_csn`` into a dev database."""
        names = (
            [t.lower() for t in tables]
            if tables is not None
            else sorted(self._app_schemas)
        )
        counts: dict[str, int] = {}
        for table in names:
            schema = self.app_schema(table)
            if not target.catalog.has_table(schema.name):
                target.create_table(schema)
            rows = self.reconstruct_rows(table, upto_csn)
            target.bulk_load(schema.name, rows)
            counts[schema.name] = len(rows)
        return counts

    @property
    def event_count(self) -> int:
        """Total rows across all provenance tables (benchmark E8's x-axis)."""
        total = 0
        for name in self.db.catalog.table_names():
            total += self.db.store(name).row_count(None)
        return total
