"""Exception hierarchy for the repro library.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one base class. Subsystem bases (``DatabaseError``,
``RuntimeError``-analogue ``AppRuntimeError``, ``TrodError``) group the
database substrate, the serverless runtime, and the TROD debugger core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


# ---------------------------------------------------------------------------
# Database substrate (repro.db)
# ---------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for errors raised by the database engine."""


class SchemaError(DatabaseError):
    """Invalid schema definition or reference to an unknown table/column."""


class TypeCoercionError(DatabaseError):
    """A value could not be coerced to its column's declared type."""


class SqlError(DatabaseError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class PlanningError(SqlError):
    """A parsed statement could not be turned into an executable plan."""


class ExecutionError(DatabaseError):
    """A plan failed while executing (bad function arity, type mismatch...)."""


class IntegrityError(DatabaseError):
    """A constraint (primary key, unique, not-null) was violated."""


class TransactionError(DatabaseError):
    """Base class for transaction lifecycle errors."""


class TransactionAborted(TransactionError):
    """The transaction was aborted and can no longer be used."""


class DeadlockError(TransactionAborted):
    """The lock manager chose this transaction as a deadlock victim."""


class SerializationError(TransactionAborted):
    """A snapshot-isolation write-write conflict (first-committer-wins)."""


class LockTimeoutError(TransactionAborted):
    """A lock could not be acquired within the configured bound."""


class WalError(DatabaseError):
    """The write-ahead log is corrupt or was used incorrectly."""


class StorageError(DatabaseError):
    """Base class for errors raised by the paged storage tier."""


class PageCorruptError(StorageError):
    """A page read from disk failed its checksum or structural checks."""


class BufferPoolError(StorageError):
    """The buffer pool was driven into an invalid state (e.g. every
    frame pinned when an eviction was required)."""


class ReplicationError(DatabaseError):
    """A replica cannot (or may not) apply the shipped change stream."""


class ReadOnlyError(DatabaseError):
    """A write was attempted on a read-only (replica) database."""


class FencedError(TransactionError):
    """The database was fenced (demoted primary); it accepts no new commits."""


class UnavailableError(DatabaseError):
    """The database is crashed/unreachable (simulated node failure)."""


class ProbeTimeoutError(UnavailableError):
    """A liveness probe exceeded the detector's timeout budget."""


class FaultInjected(ReproError):
    """An error raised on purpose by the deterministic fault injector.

    Deliberately *not* a :class:`DatabaseError`: subsystem handlers that
    catch and absorb their own error types must not accidentally swallow
    an injected fault unless the schedule asked for a subsystem error
    (in which case the injector raises that subsystem type directly).
    """

    def __init__(self, point: str, hit: int, message: str | None = None):
        super().__init__(message or f"injected fault at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


class CrashPoint(FaultInjected):
    """A simulated whole-process crash at a named fault point.

    Code under test must let this propagate without running cleanup —
    a real crash runs nothing — so recovery paths are exercised from
    exactly the on-disk state the fault point left behind.
    """


class TimeTravelError(DatabaseError):
    """A time-travel request referenced an impossible point in history."""


class InterfaceError(DatabaseError):
    """The connection API was misused (closed connection, bad engine...)."""


# ---------------------------------------------------------------------------
# Serverless runtime (repro.runtime)
# ---------------------------------------------------------------------------


class AppRuntimeError(ReproError):
    """Base class for errors raised by the application runtime."""


class UnknownHandlerError(AppRuntimeError):
    """A request or RPC referenced a handler name that is not registered."""


class HandlerError(AppRuntimeError):
    """A request handler raised; the original exception is ``__cause__``."""

    def __init__(self, handler: str, req_id: str, cause: BaseException):
        super().__init__(f"handler {handler!r} failed for request {req_id}: {cause!r}")
        self.handler = handler
        self.req_id = req_id
        self.__cause__ = cause


class SchedulerError(AppRuntimeError):
    """The cooperative scheduler was driven into an invalid state."""


class NonDeterminismError(AppRuntimeError):
    """A determinism check found two executions of one handler diverging."""


# ---------------------------------------------------------------------------
# TROD core (repro.core)
# ---------------------------------------------------------------------------


class TrodError(ReproError):
    """Base class for errors raised by the TROD debugger core."""


class ProvenanceError(TrodError):
    """The provenance database is missing data required for an operation."""


class ReplayError(TrodError):
    """Bug replay could not be performed (missing trace, bad request id)."""


class ReplayDivergenceError(ReplayError):
    """A replayed execution produced different results than the original.

    Raised only when the caller asked for strict fidelity checking;
    otherwise divergences are reported in the :class:`ReplayResult`.
    """


class RetroactiveError(TrodError):
    """Retroactive programming could not be set up or executed."""
