"""Deterministic fault injection — failures, the TROD way.

The paper's thesis is that transactions make debugging easy because
every failure is replayable. That only holds if failures themselves are
deterministic, so this module provides the one sanctioned way to break
things: a seeded, schedule-driven :class:`FaultInjector` that fires at
*named fault points* threaded through the substrate's riskiest writes —
page writes and fsyncs, WAL flushes, replication ship/apply, detector
probes, and both phases of two-phase commit.

Sites call :func:`fault_point`, which is a no-op unless an injector is
installed (a module-level check; production pays one ``is None`` test).
Tests arm the injector::

    inj = FaultInjector(seed=7)
    inj.fail("2pc.decision", exc=CrashPoint)     # crash before the
    with inj.installed():                        # decision is logged
        gtxn.commit()        # raises CrashPoint at the armed point

Every firing is recorded in ``inj.trace``; the same seed + schedule +
workload replays the identical failure, byte for byte. Probabilistic
faults (``fail_every``) draw from the injector's own seeded RNG, never
from global randomness.

:class:`BackoffPolicy` lives here too: deterministic exponential backoff
with seeded jitter, measured in cooperative-scheduler ticks rather than
wall-clock seconds, shared by detector probes and connection failover
retry so chaos tests stay replayable.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Any, Iterator

from repro.errors import CrashPoint, FaultInjected

__all__ = [
    "BackoffPolicy",
    "FAULT_POINTS",
    "FaultInjector",
    "active",
    "fault_point",
    "install",
    "injected",
    "uninstall",
]

#: Registry of the named fault points the substrate exposes. ``arm``-ing
#: an unknown name raises, catching typos before a test silently injects
#: nothing. Each value documents where in the write path the point sits.
FAULT_POINTS: dict[str, str] = {
    "page.write": "before a data page is written to its page file",
    "page.header": "before a page-file header slot is written",
    "page.fsync": "before a page file flushes/fsyncs to disk",
    "wal.flush": "before the WAL drains its pending group to disk",
    "repl.ship": "before a record is published to the replication log",
    "repl.apply": "before a shipped record is applied to a replica",
    "detector.probe": "around a heartbeat liveness probe",
    "2pc.prepare": "before a branch is prepared (phase 1)",
    "2pc.decision": "before the coordinator logs its commit decision",
    "2pc.branch_commit": "before a prepared branch commits (phase 2)",
    "2pc.end": "before the coordinator logs the end-of-commit record",
}


class _Arm:
    """One scheduled fault: fire at an absolute hit number of a point."""

    __slots__ = ("point", "at", "count", "exc")

    def __init__(self, point: str, at: int, count: int, exc: Any):
        self.point = point
        self.at = at
        self.count = count
        self.exc = exc


class FaultInjector:
    """Seeded, schedule-driven fault injection with a replayable trace.

    Two scheduling modes compose freely:

    * ``fail(point, at=N)`` — fire on the Nth hit of the point (1-based;
      default: the next hit), ``count`` consecutive times.
    * ``fail_every(point, p)`` — fire each hit with probability ``p``
      drawn from the injector's own seeded RNG.

    The raised exception defaults to :class:`CrashPoint` (a simulated
    process kill); pass ``exc=`` an exception class or instance to
    inject a subsystem error (``UnavailableError`` for a probe,
    ``WalError`` for a flush...) instead.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self.hits: dict[str, int] = {}
        self.trace: list[tuple[str, int, dict[str, Any]]] = []
        self.stats = {"hits": 0, "fired": 0}
        self._arms: list[_Arm] = []
        self._rates: dict[str, tuple[float, Any]] = {}

    # -- scheduling -----------------------------------------------------

    def _check_point(self, point: str) -> None:
        if point not in FAULT_POINTS:
            known = ", ".join(sorted(FAULT_POINTS))
            raise FaultInjected(
                point, 0, f"unknown fault point {point!r} (known: {known})"
            )

    def fail(
        self,
        point: str,
        *,
        at: int | None = None,
        count: int = 1,
        exc: Any = None,
    ) -> "FaultInjector":
        """Arm ``point`` to raise on its ``at``-th hit (default: next)."""
        self._check_point(point)
        if at is None:
            at = self.hits.get(point, 0) + 1
        if at < 1 or count < 1:
            raise FaultInjected(point, at, "at and count must be >= 1")
        self._arms.append(_Arm(point, at, count, exc))
        return self

    def fail_every(self, point: str, p: float, *, exc: Any = None) -> "FaultInjector":
        """Arm ``point`` to raise each hit with seeded probability ``p``."""
        self._check_point(point)
        if not 0.0 <= p <= 1.0:
            raise FaultInjected(point, 0, "probability must be in [0, 1]")
        self._rates[point] = (p, exc)
        return self

    def clear(self, point: str | None = None) -> None:
        """Disarm every schedule entry (or just ``point``'s)."""
        if point is None:
            self._arms.clear()
            self._rates.clear()
        else:
            self._arms = [a for a in self._arms if a.point != point]
            self._rates.pop(point, None)

    # -- firing ---------------------------------------------------------

    def _raise(self, point: str, hit: int, exc: Any, ctx: dict[str, Any]) -> None:
        self.stats["fired"] += 1
        self.trace.append((point, hit, ctx))
        if exc is None:
            raise CrashPoint(point, hit)
        if isinstance(exc, type):
            if issubclass(exc, FaultInjected):
                raise exc(point, hit)
            raise exc(f"injected fault at {point!r} (hit {hit})")
        if isinstance(exc, BaseException):
            raise exc
        raise exc(point, hit)  # factory callable

    def fire(self, point: str, **ctx: Any) -> None:
        """Count a hit of ``point``; raise if the schedule says so."""
        hit = self.hits.get(point, 0) + 1
        self.hits[point] = hit
        self.stats["hits"] += 1
        for arm in self._arms:
            if arm.point == point and arm.at <= hit < arm.at + arm.count:
                self._raise(point, hit, arm.exc, ctx)
        if point in self._rates:
            p, exc = self._rates[point]
            if self.rng.random() < p:
                self._raise(point, hit, exc, ctx)

    def installed(self) -> Any:
        """``with inj.installed():`` — ambient-install for the block."""
        return injected(self)


class BackoffPolicy:
    """Deterministic exponential backoff with seeded jitter.

    Delays are measured in *cooperative-scheduler ticks* (checkpoint
    yields), not wall-clock seconds: retry pacing then interleaves
    deterministically with the rest of a chaos schedule and replays
    byte-identically. Jitter is stateless per attempt — attempt ``k``
    always gets the same jittered delay for a given seed, regardless of
    how many other callers share the policy.
    """

    def __init__(
        self,
        base: float = 1.0,
        factor: float = 2.0,
        cap: float = 16.0,
        jitter: float = 0.0,
        seed: int = 0,
    ):
        if base <= 0 or factor < 1 or cap < base or not 0 <= jitter < 1:
            raise ValueError("invalid backoff parameters")
        self.base = base
        self.factor = factor
        self.cap = cap
        self.jitter = jitter
        self.seed = seed

    def delay(self, attempt: int) -> float:
        """Jittered delay (in ticks) before retry number ``attempt`` (0-based)."""
        raw = min(self.cap, self.base * self.factor ** max(0, attempt))
        if not self.jitter:
            return raw
        rng = random.Random((self.seed << 20) ^ (attempt + 1))
        return raw * (1.0 - self.jitter * rng.random())

    def ticks(self, attempt: int) -> int:
        """``delay`` rounded to whole scheduler ticks, at least one."""
        return max(1, round(self.delay(attempt)))


# -- ambient installation ----------------------------------------------

_ACTIVE: FaultInjector | None = None


def install(injector: FaultInjector) -> None:
    """Make ``injector`` the ambient injector every fault point consults."""
    global _ACTIVE
    _ACTIVE = injector


def uninstall() -> None:
    """Remove the ambient injector; fault points go back to no-ops."""
    global _ACTIVE
    _ACTIVE = None


def active() -> FaultInjector | None:
    """The currently installed injector, if any."""
    return _ACTIVE


@contextmanager
def injected(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` for the duration of the ``with`` block."""
    install(injector)
    try:
        yield injector
    finally:
        uninstall()


def fault_point(point: str, **ctx: Any) -> None:
    """Hit a named fault point (no-op unless an injector is installed)."""
    if _ACTIVE is not None:
        _ACTIVE.fire(point, **ctx)
