"""repro — a reproduction of "Transactions Make Debugging Easy" (CIDR'23).

The package is layered exactly like the paper's system:

* :mod:`repro.db` — the transactional SQL substrate (P1/P2)
* :mod:`repro.runtime` — the DBOS-style deterministic handler runtime (P3)
* :mod:`repro.core` — TROD itself: tracing, provenance, declarative
  debugging, bug replay, and retroactive programming
* :mod:`repro.apps` — the paper's case-study applications
* :mod:`repro.workload` — workload generators and measurement harness
* :mod:`repro.cluster` — the self-managing layer on top of
  :mod:`repro.db`: heartbeat failure detection, automatic failover, and
  online resharding

The front door is :func:`repro.connect`: one Connection/Cursor API over
single-node, sharded, and replicated engines, with TROD attachable to any
of them::

    import repro
    from repro.db import Database

    conn = repro.connect(Database())
    conn.execute("CREATE TABLE t (id INTEGER, v TEXT)")
    with conn.transaction() as txn:
        txn.execute("INSERT INTO t VALUES (?, ?)", (1, "hello"))
    print(conn.execute("SELECT v FROM t WHERE id = ?", (1,)).scalar())
"""

from repro.cluster import Controller, HeartbeatDetector, reshard
from repro.db.connection import (
    Connection,
    ConnectionPool,
    Cursor,
    Engine,
    connect,
)
from repro.faults import BackoffPolicy, FaultInjector, injected

__version__ = "1.4.0"

__all__ = [
    "BackoffPolicy",
    "Connection",
    "ConnectionPool",
    "Controller",
    "Cursor",
    "Engine",
    "FaultInjector",
    "HeartbeatDetector",
    "connect",
    "injected",
    "reshard",
    "__version__",
]
