"""repro — a reproduction of "Transactions Make Debugging Easy" (CIDR'23).

The package is layered exactly like the paper's system:

* :mod:`repro.db` — the transactional SQL substrate (P1/P2)
* :mod:`repro.runtime` — the DBOS-style deterministic handler runtime (P3)
* :mod:`repro.core` — TROD itself: tracing, provenance, declarative
  debugging, bug replay, and retroactive programming
* :mod:`repro.apps` — the paper's case-study applications
* :mod:`repro.workload` — workload generators and measurement harness
"""

__version__ = "1.0.0"
