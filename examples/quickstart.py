"""Quickstart: trace an application, query provenance, replay a request.

The database is reached through ``repro.connect()`` — the same
Connection/Cursor API that drives sharded and replicated deployments in
the sibling examples (sharded_cluster.py, replicated_reads.py).

Run:  python examples/quickstart.py
"""

import repro
from repro.core import Trod, report
from repro.db import Database
from repro.runtime import Runtime


def main() -> None:
    # 1. A database and a runtime (the TROD principles: all shared state
    #    in the database, accessed only through transactions). TROD
    #    attaches through the same connect() call that opens the API.
    db = Database()
    runtime = Runtime(db)
    trod = Trod(db).attach(runtime)
    conn = repro.connect(db, trod=trod)
    conn.execute(
        "CREATE TABLE accounts (owner TEXT NOT NULL, balance INTEGER NOT NULL)"
    )

    # 2. Deterministic request handlers.
    def open_account(ctx, owner, amount):
        with ctx.txn(label="openAccount") as t:
            t.execute(
                "INSERT INTO accounts (owner, balance) VALUES (?, ?)",
                (owner, amount),
            )
        return owner

    def transfer(ctx, source, target, amount):
        with ctx.txn(label="transfer") as t:
            balance = t.execute(
                "SELECT balance FROM accounts WHERE owner = ?", (source,)
            ).scalar()
            if balance < amount:
                ctx.fail(f"insufficient funds: {balance} < {amount}")
            t.execute(
                "UPDATE accounts SET balance = balance - ? WHERE owner = ?",
                (amount, source),
            )
            t.execute(
                "UPDATE accounts SET balance = balance + ? WHERE owner = ?",
                (amount, target),
            )
        return amount

    runtime.register("openAccount", open_account)
    runtime.register("transfer", transfer)

    # 3. Serve requests; bookmark the commit position before the transfer
    #    so time travel can look straight at the pre-transfer state.
    runtime.submit("openAccount", "alice", 100)
    runtime.submit("openAccount", "bob", 10)
    before_transfer = conn.last_commit_csn
    runtime.submit("transfer", "alice", "bob", 30)
    failed = runtime.submit("transfer", "bob", "alice", 1000)  # fails

    # 4. The cursor API: DB-API ergonomics, attribute-style rows.
    print("=== Balances (cursor) ===")
    cur = conn.cursor().execute(
        "SELECT owner, balance FROM accounts ORDER BY owner"
    )
    for row in cur:
        print(f"  {row.owner}: {row.balance}")

    # 5. First-class time travel: SELECT ... AS OF <csn>.
    alice_before = conn.execute(
        "SELECT balance FROM accounts WHERE owner = ? AS OF ?",
        ("alice", before_transfer),
    ).scalar()
    print(f"\nalice before the transfer (AS OF {before_transfer}): {alice_before}")

    # 6. Declarative debugging: plain SQL over the provenance database.
    print("\n=== Invocations (the paper's Table 1) ===")
    print(report.render_table1(trod))

    print("\n=== Who updated the accounts table? ===")
    print(
        trod.query(
            "SELECT E.ReqId AS ReqId, E.HandlerName AS HandlerName,"
            " A.Type AS Kind, A.Owner AS Owner, A.Balance AS Balance"
            " FROM Executions AS E, AccountsEvents AS A ON E.TxnId = A.TxnId"
            " WHERE A.Type != 'Snapshot' AND A.Type != 'Read'"
            " ORDER BY A.Seq"
        ).pretty()
    )

    print("\n=== Failed requests ===")
    for row in trod.debugger.failed_requests():
        print(f"  {row['ReqId']} {row['HandlerName']}: {row['Error']}")

    # 7. Faithful replay of the successful transfer, in a dev database
    #    reconstructed purely from provenance.
    result = trod.replayer.replay_request("R3")
    print(f"\n=== Replay of R3 (fidelity: {result.fidelity}) ===")
    print("  dev accounts after replay:", result.dev_db.table_rows("accounts"))

    # 8. Retroactive programming: would a 2x fee have bounced R3?
    def transfer_with_fee(ctx, source, target, amount):
        return transfer(ctx, source, target, amount * 2)

    retro = trod.retroactive.run(["R3"], patches={"transfer": transfer_with_fee})
    outcome = retro.outcomes[0].requests[0]
    print("\n=== Retroactive: transfer with a 2x fee ===")
    print(f"  original output: {outcome.original_output}")
    print(f"  patched output:  {outcome.output_repr} (error: {outcome.error})")
    print(f"  final state: {retro.outcomes[0].final_state['accounts']}")


if __name__ == "__main__":
    main()
