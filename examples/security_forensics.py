"""§4.2's security case studies: access-control patterns and exfiltration.

* The **User Profiles** pattern query (verbatim from the paper) finds an
  insecure handler that let another user rewrite alice's profile.
* The **Authentication** pattern finds unauthenticated reads of a
  protected table.
* Workflow taint tracking follows stolen credit-card data through a
  two-hop lateral movement (users -> staging -> export channel) that a
  single-request analysis would miss.

Run:  python examples/security_forensics.py
"""

from repro.apps import build_ecommerce_app, build_profiles_app
from repro.core import Trod
from repro.db import Database
from repro.runtime import Runtime


def profiles_demo() -> None:
    db = Database()
    runtime = Runtime(db)
    event_names = build_profiles_app(db, runtime)
    trod = Trod(db, event_names=event_names).attach(runtime)

    runtime.submit("createProfile", "alice", "alice@x.com", auth_user="alice")
    runtime.submit("updateProfile", "alice", "hello!", auth_user="alice")
    runtime.submit(
        "updateProfileInsecure", "alice", "hacked bio", auth_user="mallory"
    )
    runtime.submit("sendMessage", "M1", "alice", "the secret", auth_user="bob")
    runtime.submit("readMessages", "alice")  # no auth_user: anonymous!

    print("== User Profiles pattern (the paper's query, verbatim) ==")
    rs = trod.query(
        "SELECT Timestamp, ReqId, HandlerName\n"
        "FROM Executions as E, ProfileEvents as P\n"
        "ON E.TxnId = P.TxnId\n"
        "WHERE P.UserName != P.UpdatedBy AND P.Type = 'Update'"
    )
    print(rs.pretty())

    print("\n== Built-in pattern checkers ==")
    for violation in trod.security.user_profiles("profiles"):
        print(
            f"   [{violation.pattern}] {violation.req_id}"
            f" via {violation.handler}"
        )
    for violation in trod.security.authentication("messages"):
        print(
            f"   [{violation.pattern}] {violation.req_id}"
            f" via {violation.handler} (AuthUser is NULL)"
        )


def exfiltration_demo() -> None:
    db = Database()
    runtime = Runtime(db)
    event_names = build_ecommerce_app(db, runtime)
    trod = Trod(db, event_names=event_names).attach(runtime)

    runtime.submit("registerUser", "U1", "u1@x.com", "4111-1111-1111-1111")
    runtime.submit("registerUser", "U2", "u2@x.com", "4222-2222-2222-2222")
    runtime.submit("restock", "SKU1", 10)
    runtime.submit("addToCart", "C1", "U1", "SKU1", 1, 19.99)
    runtime.submit("checkout", "C1", "U1")  # benign workflow (emails receipt)
    runtime.submit("weeklyReport")  # benign reporting email

    # The attack: one compromised handler stages the card numbers in an
    # innocuous table; a separate, legitimate-looking report exports them.
    runtime.submit("harvestData", "Q3-metrics")
    runtime.submit("exportReport", "Q3-metrics")

    print("\n== Workflow taint tracking over the users table ==")
    state = trod.taint.compute_taint(["users"])
    print(f"   tainted tables:   {sorted(state.tainted_tables)}")
    print(f"   tainted requests: {dict(sorted(state.tainted_requests.items()))}")

    print("\n== Exfiltration flows (sinks: export/email/http) ==")
    for flow in trod.taint.find_flows(["users"]):
        print(
            f"   {flow.req_id} {flow.handler}: {flow.hops}-hop flow from"
            f" {flow.sources} to channel {flow.sinks[0]['Channel']!r}"
        )
        print(f"      exported payload: {flow.sinks[0]['Payload'][:70]}...")

    print("\n== Forensics: everything the harvesting request touched ==")
    record = trod.taint.track_request("R7")
    print(f"   workflow: {record['workflow']}")
    print(f"   read:     {record['tables_read']}")
    print(f"   wrote:    {record['tables_written']}")
    print(
        "   note: benign checkout/report emails were NOT flagged —"
        " only the tainted chain."
    )


if __name__ == "__main__":
    profiles_demo()
    exfiltration_demo()
