"""The paper's §5 "Challenges and Research Directions", implemented.

Four extensions beyond the core evaluation:

1. **Performance debugging** — APM-style latency profiling into a
   queryable PerfEvents table (slowest requests, per-handler stats).
2. **Data-quality debugging** — declarative checks over traced history
   that name the exact request that degraded data quality.
3. **Privacy** — GDPR-style erasure of one user's values from provenance
   while preserving debugging metadata; replay degrades gracefully.
4. **Multiple data stores** — cross-store transactions with an aligned
   commit log (2PC over two independent databases).

Run:  python examples/paper_extensions.py
"""

from repro.apps import build_moodle_app
from repro.core import Trod
from repro.db import Database
from repro.db.multistore import MultiStoreCoordinator
from repro.runtime import Runtime
from repro.workload.generators import ForumWorkload


def performance_demo(trod, runtime) -> None:
    print("== 1. Performance debugging (APM over provenance) ==")
    profiler = trod.enable_profiling()
    for i in range(20):
        runtime.submit("subscribeUser", f"U{i}", f"F{i % 3}")
    runtime.submit("fetchSubscribers", "F0")
    print("   slowest requests:")
    for row in profiler.slowest_requests(3):
        print(
            f"     {row['ReqId']:<6} {row['HandlerName']:<18}"
            f" {row['DurationUs']:8.1f} us"
        )
    print("   per-transaction-label cost:")
    for row in profiler.txn_label_stats()[:3]:
        print(
            f"     {row['Label']:<16} n={row['n']:<4}"
            f" mean={row['mean_us']:7.1f} us total={row['total_us']:9.1f} us"
        )
    profiler.detach()


def quality_demo(trod, runtime) -> None:
    print("\n== 2. Data-quality debugging ==")
    runtime.run_concurrent(
        ForumWorkload.racy_pair(user="qa-user", forum="qa-forum"),
        schedule=ForumWorkload.RACY_SCHEDULE,
    )
    trod.quality.add_unique_check(
        "one-subscription", "forum_sub", ["userId", "forum"]
    )
    violation = trod.quality.first_degradation("one-subscription")
    print(
        f"   first degradation: check {violation.check!r} at csn"
        f" {violation.csn}, caused by {violation.req_id}"
        f" ({violation.handler})"
    )
    print(f"   detail: {violation.detail}")


def privacy_demo(trod) -> None:
    print("\n== 3. Privacy: forget a user from provenance ==")
    before = trod.query(
        "SELECT COUNT(*) FROM ForumEvents WHERE UserId = 'U1'"
    ).scalar()
    report = trod.privacy.forget_value("forum_sub", "userId", "U1")
    after = trod.query(
        "SELECT COUNT(*) FROM ForumEvents WHERE UserId = 'U1'"
    ).scalar()
    print(
        f"   events mentioning U1: {before} -> {after}"
        f" ({report.events_redacted} redacted,"
        f" {report.requests_scrubbed} request args scrubbed)"
    )
    executions = trod.query("SELECT COUNT(*) FROM Executions").scalar()
    print(f"   execution metadata preserved: {executions} rows still queryable")
    print(f"   audit log (no values stored): {trod.privacy.audit_log()}")


def multistore_demo() -> None:
    print("\n== 4. Cross-store transactions with aligned logs ==")
    relational = Database(name="orders-db")
    relational.execute("CREATE TABLE orders (orderId TEXT UNIQUE, total FLOAT)")
    kv = Database(name="cache-db")
    kv.execute("CREATE TABLE cache (k TEXT UNIQUE, v TEXT)")
    coordinator = MultiStoreCoordinator({"orders": relational, "cache": kv})

    gtxn = coordinator.begin()
    gtxn.execute("orders", "INSERT INTO orders VALUES ('O1', 42.0)")
    gtxn.execute("cache", "INSERT INTO cache VALUES ('order:O1', 'placed')")
    global_csn = gtxn.commit()
    print(f"   atomic commit across both stores at global csn {global_csn}")

    failing = coordinator.begin()
    try:
        failing.execute("orders", "INSERT INTO orders VALUES ('O2', 7.0)")
        failing.execute("cache", "INSERT INTO cache VALUES ('order:O1', 'dup!')")
        failing.commit()
    except Exception as exc:
        failing.abort()
        print(f"   conflicting global txn rolled back: {type(exc).__name__}")
    print(
        "   orders table untouched by the rolled-back txn:"
        f" {relational.execute('SELECT COUNT(*) FROM orders').scalar()} row(s)"
    )
    print("   aligned log (global -> per-store csn):")
    for commit in coordinator.aligned_log:
        print(f"     gcsn {commit.global_csn}: {commit.local_csns}")


def main() -> None:
    db = Database()
    runtime = Runtime(db)
    event_names = build_moodle_app(db, runtime)
    trod = Trod(db, event_names=event_names).attach(runtime)

    performance_demo(trod, runtime)
    quality_demo(trod, runtime)
    privacy_demo(trod)
    multistore_demo()


if __name__ == "__main__":
    main()
