"""§4.1's MediaWiki case studies: MW-44325 and MW-39225.

Two concurrent page edits interleave their read/write/record transactions,
creating duplicate sitelinks (MW-44325) and an inconsistent article size
history (MW-39225). TROD locates both from provenance and validates the
atomic-edit fix retroactively.

Run:  python examples/mediawiki_concurrent_edits.py
"""

from repro.apps import build_mediawiki_app
from repro.apps.mediawiki import edit_page_fixed
from repro.core import Trod, report
from repro.db import Database
from repro.runtime import Request, Runtime


def main() -> None:
    db = Database()
    runtime = Runtime(db)
    event_names = build_mediawiki_app(db, runtime)
    trod = Trod(db, event_names=event_names).attach(runtime)

    runtime.submit("createPage", "P1", "Example", "hello")  # R1, size 5
    print("== Two concurrent edits of P1, fully interleaved ==")
    runtime.run_concurrent(
        [
            Request("editPage", ("P1", "hello world", "http://example.org")),
            Request("editPage", ("P1", "hello!", "http://example.org")),
        ],
        schedule=[0, 1, 0, 1, 0, 1],  # read/read, write/write, record/record
    )

    links = runtime.submit("fetchSiteLinks", "P1")
    print(f"   MW-44325 symptom — fetchSiteLinks: {links.error}")
    sizes = runtime.submit("checkSizeConsistency", "P1", 5)
    print(f"   MW-39225 symptom — size audit:     {sizes.error}")

    print("\n== Provenance: the complete edit history ==")
    print(report.render_table1(trod))

    print("\n== Who inserted the duplicate links? ==")
    dupes = trod.debugger.duplicate_inserts("site_links", ["PageId", "Url"])
    for dupe in dupes:
        writers = [(w["ReqId"], f"TS{w['Timestamp']}") for w in dupe["writers"]]
        print(f"   {dupe['key']} inserted {dupe['count']}x by {writers}")

    print("\n== What interleaved into R2's edit? ==")
    for write in trod.debugger.interleaved_writes("R2"):
        print(
            f"   {write['ReqId']} {write['Type']} on {write['_table']}"
            f" at csn {write['Csn']}"
        )

    print("\n== Replay R2 to watch the stale read happen ==")

    def breakpoint_cb(info):
        size = info.dev_db.execute(
            "SELECT size FROM pages WHERE pageId = 'P1'"
        ).scalar()
        print(
            f"   before {info.txn_name} [{info.label}]: page size = {size},"
            f" injected {len(info.injected)} concurrent write(s)"
        )

    replay = trod.replayer.replay_request("R2", breakpoint_cb=breakpoint_cb)
    print(f"   fidelity: {replay.fidelity}")

    print("\n== Retroactive validation of the atomic edit ==")
    retro = trod.retroactive.run(
        ["R2", "R3"],
        patches={"editPage": edit_page_fixed},
        followups=["R4", "R5"],  # the two auditors
    )
    print(f"   {retro.summary()}")
    for outcome in retro.outcomes:
        audits = [f.error or "ok" for f in outcome.followups]
        print(
            f"   ordering {outcome.schedule}: links ="
            f" {outcome.final_state['site_links']}, audits = {audits}"
        )


if __name__ == "__main__":
    main()
