"""One API, three replicas: session-guaranteed reads over a replica set.

``repro.connect()`` over a `ReplicatedDatabase` bakes read-your-writes in:
each connection carries a session token (the CSN of its last acknowledged
write) and SELECTs are served only by replicas that have applied it,
falling back to the primary when replication lag would violate the
guarantee. ``AS OF`` reads route to any replica whose shipped history
covers the target CSN.

Run:  python examples/replicated_reads.py
"""

import repro
from repro.db import ReplicatedDatabase


def main() -> None:
    cluster = ReplicatedDatabase(n_replicas=3, mode="async")
    conn = repro.connect(cluster)  # read_preference="replica" is the default

    conn.execute("CREATE TABLE inventory (sku TEXT, stock INTEGER)")
    for i in range(8):
        conn.execute("INSERT INTO inventory VALUES (?, ?)", (f"SKU{i}", 100))
    cluster.catch_up()
    restock_point = conn.last_commit_csn

    # Replicas are now caught up: reads are served by them round-robin.
    for _ in range(6):
        conn.execute("SELECT stock FROM inventory WHERE sku = ?", ("SKU1",))
    print(f"after catch-up: {cluster.stats['replica_reads']} replica reads, "
          f"{cluster.stats['stale_fallbacks']} stale fallbacks")

    # A write the replicas have NOT applied yet (async shipping): the
    # session floor forces the read back to the primary — the connection
    # never serves you a state older than your own writes.
    conn.execute(
        "UPDATE inventory SET stock = stock - 99 WHERE sku = ?", ("SKU1",)
    )
    seen = conn.execute(
        "SELECT stock FROM inventory WHERE sku = ?", ("SKU1",)
    ).scalar()
    print(f"read-your-writes under lag: stock={seen} "
          f"(stale fallbacks now {cluster.stats['stale_fallbacks']})")

    # A *fresh* session has no floor: its reads may legally see the
    # slightly stale replica state until the stream catches up.
    other = repro.connect(cluster)
    stale = other.execute(
        "SELECT stock FROM inventory WHERE sku = ?", ("SKU1",)
    ).scalar()
    cluster.catch_up()
    fresh = other.execute(
        "SELECT stock FROM inventory WHERE sku = ?", ("SKU1",)
    ).scalar()
    print(f"fresh session: saw {stale} before catch-up, {fresh} after")

    # Time travel: replicas preserve CSNs, so AS OF reads are served by
    # whichever replica's history covers the bookmark.
    at_restock = conn.execute(
        "SELECT stock FROM inventory WHERE sku = ? AS OF ?",
        ("SKU1", restock_point),
    ).scalar()
    print(f"stock at AS OF {restock_point}: {at_restock}")

    # Failover: promote the most caught-up replica; the same connection
    # keeps working against the new primary.
    cluster.failover()
    conn.execute("UPDATE inventory SET stock = 500 WHERE sku = ?", ("SKU0",))
    print(f"after failover, writes land on {cluster.primary.name!r}: "
          f"SKU0 stock = "
          f"{conn.execute('SELECT stock FROM inventory WHERE sku = ?', ('SKU0',)).scalar()}")


if __name__ == "__main__":
    main()
