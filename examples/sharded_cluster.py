"""One API, four shards: the quickstart workload on a hash-sharded cluster.

The point of ``repro.connect()`` is that this file's `run_workload` is
*identical* to what you would write against a single `Database` — the
engine underneath is a 4-shard hash-partitioned cluster committing
cross-shard writes through 2PC, and TROD attaches to the facade exactly
as it attaches to a single node.

Run:  python examples/sharded_cluster.py
"""

import repro
from repro.core import Trod
from repro.db import ShardedDatabase


def run_workload(conn: repro.Connection) -> int:
    """Engine-agnostic: runs unchanged on any repro.connect() engine."""
    conn.execute(
        "CREATE TABLE orders (order_id INTEGER, customer TEXT, total FLOAT)"
    )
    for i in range(20):
        conn.execute(
            "INSERT INTO orders VALUES (?, ?, ?)",
            (i, f"cust-{i % 5}", float(10 * (i + 1))),
        )
    bookmark = conn.last_commit_csn

    # A cross-key transfer of spend, committed atomically (on the sharded
    # engine this is a genuine two-phase commit across shards).
    with conn.transaction(label="rebalance") as txn:
        txn.execute("UPDATE orders SET total = total - 5 WHERE order_id = ?", (3,))
        txn.execute("UPDATE orders SET total = total + 5 WHERE order_id = ?", (11,))

    return bookmark


def main() -> None:
    cluster = ShardedDatabase(4, shard_keys={"orders": "order_id"})
    trod = Trod(cluster)
    conn = repro.connect(cluster, trod=trod)

    bookmark = run_workload(conn)

    print("=== Routed point lookup (one shard) vs scatter-gather ===")
    for line in conn.explain("SELECT * FROM orders WHERE order_id = ?", (3,)):
        print(" ", line)

    cur = conn.cursor().execute(
        "SELECT customer, COUNT(*) AS n, SUM(total) AS spend "
        "FROM orders GROUP BY customer ORDER BY customer"
    )
    print("\n=== Per-customer spend (partial aggregates, merged) ===")
    for row in cur:
        print(f"  {row.customer}: {row.n} orders, {row.spend:.0f} total")

    # First-class time travel at a *global* CSN: the aligned commit log
    # translates it onto each shard's local position.
    before = conn.execute(
        "SELECT total FROM orders WHERE order_id = ? AS OF ?", (3, bookmark)
    ).scalar()
    after = conn.execute(
        "SELECT total FROM orders WHERE order_id = ?", (3,)
    ).scalar()
    print(f"\norder 3 total: {before:.0f} at AS OF {bookmark}, now {after:.0f}")

    # The debugger-visible event stream covers every shard.
    trod.flush()
    writes = trod.query(
        "SELECT COUNT(*) FROM OrdersEvents WHERE Type != 'Read'"
    ).scalar()
    print(f"\nTROD captured {writes} write events across "
          f"{cluster.n_shards} shards "
          f"(stats: {conn.engine.stats['routed_statements']} routed, "
          f"{conn.engine.stats['fanout_statements']} fan-out statements)")


if __name__ == "__main__":
    main()
