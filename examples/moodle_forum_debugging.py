"""The paper's full §2/§3 walkthrough: MDL-59854 end to end.

1. Reproduce the race deterministically (two interleaved subscribeUser
   requests) and watch fetchSubscribers fail.
2. Locate the culprits with the paper's §3.3 SQL query.
3. Faithfully replay R1 with breakpoints showing R2's injected insert.
4. Validate the one-transaction fix retroactively over both orderings.

Run:  python examples/moodle_forum_debugging.py
"""

from repro.apps import build_moodle_app
from repro.apps.moodle import subscribe_user_fixed
from repro.core import Trod, report
from repro.db import Database
from repro.runtime import Runtime
from repro.workload.generators import ForumWorkload


def main() -> None:
    db = Database()
    runtime = Runtime(db)
    event_names = build_moodle_app(db, runtime)
    trod = Trod(db, event_names=event_names).attach(runtime)

    # --- 1. The production incident -------------------------------------
    print("== 1. Two racing subscribeUser(U1, F2) requests ==")
    print("   schedule [0,1,1,0]: R1 check, R2 check, R2 insert, R1 insert")
    results = runtime.run_concurrent(
        ForumWorkload.racy_pair(), schedule=ForumWorkload.RACY_SCHEDULE
    )
    print(f"   both requests 'succeeded': {[r.output for r in results]}")
    fetch = runtime.submit("fetchSubscribers", "F2")
    print(f"   later, fetchSubscribers(F2) raises: {fetch.error}")
    print('   (the reporter: "You have to be pretty fast and pretty lucky')
    print('    to actually reproduce this issue.")')

    # --- 2. Declarative debugging ----------------------------------------
    print("\n== 2. Declarative debugging (§3.3) ==")
    print(report.render_table1(trod))
    print()
    print(report.render_table2(trod, "forum_sub"))
    print("\nThe paper's query — who inserted the duplicated records?")
    rs = trod.query(
        "SELECT Timestamp, ReqId, HandlerName\n"
        "FROM Executions as E, ForumEvents as F\n"
        "ON E.TxnId = F.TxnId\n"
        "WHERE F.UserId = 'U1' AND F.Forum = 'F2'\n"
        "AND F.Type = 'Insert'\n"
        "ORDER BY Timestamp ASC;"
    )
    print(rs.pretty())
    print(
        "-> two request IDs, same handler, adjacent timestamps: a"
        " concurrency bug in subscribeUser."
    )

    # --- 3. Faithful replay (§3.5) ----------------------------------------
    print("\n== 3. Replaying R1 with per-transaction breakpoints ==")

    def breakpoint_cb(info):
        rows = info.dev_db.execute("SELECT COUNT(*) FROM forum_sub").scalar()
        injected = [
            f"{w.kind} ({w.values['userId']}, {w.values['forum']}) by {w.req_id}"
            for w in info.injected
        ]
        print(
            f"   breakpoint before {info.txn_name} [{info.label}]: "
            f"table has {rows} row(s); injected: {injected or 'nothing'}"
        )

    replay = trod.replayer.replay_request("R1", breakpoint_cb=breakpoint_cb)
    print(f"   replay output {replay.output!r}; fidelity: {replay.fidelity}")
    print(f"   dev database now holds: {replay.dev_db.table_rows('forum_sub')}")
    print(
        "-> the database was modified by R2 between R1's two transactions:"
        " the root cause, reproduced on demand."
    )

    # --- 4. Retroactive programming (§3.6) ----------------------------------
    print("\n== 4. Testing the fix retroactively ==")
    print("   patch: subscribeUser wraps check+insert in ONE transaction")
    retro = trod.retroactive.run(
        ["R1", "R2"],
        patches={"subscribeUser": subscribe_user_fixed},
        followups=["R3"],
    )
    print(f"   {retro.summary()}")
    for outcome in retro.outcomes:
        followup = outcome.followups[0]
        print(
            f"   ordering {outcome.schedule}: forum_sub ="
            f" {outcome.final_state['forum_sub']},"
            f" fetchSubscribers -> {followup.output_repr}"
        )
    print("-> no ordering reproduces the duplication; the patch is safe.")


if __name__ == "__main__":
    main()
