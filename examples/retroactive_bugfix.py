"""Retroactive programming in depth, including the MDL-60669 regression.

§4.1: "Sometimes, fixes to these bugs cause more bugs." The MDL-59854
patch later broke course restore (MDL-60669) because pre-existing
duplicates in deleted courses were not considered. This example shows how
a *narrow* retroactive test of the patch passes while the *wide* test the
paper recommends — re-running "other requests that may touch the same
table" — exposes the regression before production.

Run:  python examples/retroactive_bugfix.py
"""

from repro.apps import build_moodle_app
from repro.apps.moodle import subscribe_user_fixed
from repro.core import Trod
from repro.db import Database
from repro.runtime import Runtime
from repro.workload.generators import ForumWorkload


def main() -> None:
    db = Database()
    runtime = Runtime(db)
    event_names = build_moodle_app(db, runtime)
    trod = Trod(db, event_names=event_names).attach(runtime)

    # Production history: a course whose forum accumulates duplicates via
    # the MDL-59854 race, then gets deleted and (fatally) restored.
    runtime.submit("createCourse", "C1", "Databases 101", ["F2"])  # R1
    runtime.run_concurrent(  # R2, R3: the race
        ForumWorkload.racy_pair(), schedule=ForumWorkload.RACY_SCHEDULE
    )
    runtime.submit("deleteCourse", "C1")  # R4
    restore = runtime.submit("restoreCourse", "C1")  # R5
    print("== Production history ==")
    print(f"   restoreCourse(C1) failed: {restore.error}")

    trod.flush()

    # --- The developer tests the subscription patch narrowly -------------
    print("\n== Narrow retroactive test: just the two subscriptions ==")
    narrow = trod.retroactive.run(
        ["R2", "R3"], patches={"subscribeUser": subscribe_user_fixed}
    )
    print(f"   {narrow.summary()}")
    print("   -> ships it. (This is what happened in real life.)")

    # --- The paper's advice: widen the test to the same table -------------
    print("\n== Wide retroactive test: include course delete/restore ==")
    wide = trod.retroactive.run(
        ["R2", "R3"],
        patches={"subscribeUser": subscribe_user_fixed},
        followups=["R4", "R5"],
    )
    print(f"   patched world: all orderings pass = {wide.all_ok}")
    print("   (the patch prevents NEW duplicates, so restore succeeds)")

    print("\n== But replaying the patch against the ORIGINAL history ==")
    # Keep the buggy subscriptions (reproducing the duplicates already in
    # production) and re-run the restore path on top.
    against_history = trod.retroactive.run(
        ["R2", "R3"],
        orderings=[[0, 1, 1, 0]],  # the racy ordering that already happened
        followups=["R4", "R5"],
    )
    outcome = against_history.outcomes[0]
    print(f"   restore followup error: {outcome.followups[-1].error}")
    print(
        "   -> MDL-60669 found before production: the patch must also"
        " handle duplicates that already exist in deleted courses."
    )

    # --- Invariant-based validation ---------------------------------------
    print("\n== Invariant-driven retroactive sweep ==")

    def no_duplicate_subscriptions(dev_db):
        rows = dev_db.execute(
            "SELECT userId, forum, COUNT(*) FROM forum_sub"
            " GROUP BY userId, forum HAVING COUNT(*) > 1"
        ).rows
        return [f"duplicate subscription {row[:2]}" for row in rows]

    buggy = trod.retroactive.run(
        ["R2", "R3"], invariant=no_duplicate_subscriptions
    )
    fixed = trod.retroactive.run(
        ["R2", "R3"],
        patches={"subscribeUser": subscribe_user_fixed},
        invariant=no_duplicate_subscriptions,
    )
    print(
        f"   buggy handler: {sum(1 for o in buggy.outcomes if not o.ok)}"
        f"/{buggy.explored} orderings violate the invariant"
    )
    print(
        f"   fixed handler: {sum(1 for o in fixed.outcomes if not o.ok)}"
        f"/{fixed.explored} orderings violate the invariant"
    )


if __name__ == "__main__":
    main()
