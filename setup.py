"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs fail with "invalid command 'bdist_wheel'".
This shim lets ``pip install -e . --no-use-pep517`` use the legacy
``setup.py develop`` path instead. Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
